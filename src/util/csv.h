#pragma once

// Tiny CSV writer (RFC-4180-style quoting) so benchmark binaries can dump
// machine-readable series alongside the human-readable ASCII tables.

#include <ostream>
#include <string>
#include <vector>

namespace fairsched {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& cells);

  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

// Inverse of CsvWriter: splits one line (without the trailing newline) into
// unescaped cells. Handles RFC-4180 quoting, including embedded commas,
// doubled quotes and quoted newlines already joined into `line`. Used by the
// experiment harness tests to round-trip reporter output.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace fairsched
