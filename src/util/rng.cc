#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace fairsched {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a;
  std::uint64_t x = splitmix64(state);
  state ^= b + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  return splitmix64(state);
}

std::uint64_t hash_fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = span == 0 ? (*this)() : uniform_u64(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::uniform_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

double Rng::normal() {
  // Marsaglia polar method; discards the second deviate for simplicity.
  for (;;) {
    const double u = 2.0 * uniform_double() - 1.0;
    const double v = 2.0 * uniform_double() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform_double();
    while (product > limit) {
      ++k;
      product *= uniform_double();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation where only the aggregate shape matters.
  const double draw = mean + std::sqrt(mean) * normal() + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::uint64_t Rng::geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);
  const double trials = std::ceil(std::log(u) / std::log1p(-p));
  return trials < 1.0 ? 1 : static_cast<std::uint64_t>(trials);
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t r = 1; r <= n; ++r) {
    total += std::pow(static_cast<double>(r), -s);
    cdf_[r - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(cdf_.size()) - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace fairsched
