#include "util/cli.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace fairsched {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` form, or bare `--name` meaning boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Flags::env_name(const std::string& flag_name) {
  std::string out = "FAIRSCHED_";
  for (char c : flag_name) {
    out += c == '-' ? '_' : static_cast<char>(std::toupper(c));
  }
  return out;
}

bool Flags::has(const std::string& name) const {
  if (values_.count(name) > 0) return true;
  return std::getenv(env_name(name).c_str()) != nullptr;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& fallback) const {
  auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_name(name).c_str())) return env;
  return fallback;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const std::string raw = get_string(name, "");
  if (raw.empty()) return fallback;
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                raw + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const std::string raw = get_string(name, "");
  if (raw.empty()) return fallback;
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                raw + "'");
  }
}

std::string trim_whitespace(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split_and_trim(const std::string& s, char sep) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    const std::string token = trim_whitespace(s.substr(start, end - start));
    if (!token.empty()) tokens.push_back(token);
    start = end + 1;
  }
  return tokens;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const std::string raw = get_string(name, "");
  if (raw.empty()) return fallback;
  if (raw == "1" || raw == "true" || raw == "yes" || raw == "on") return true;
  if (raw == "0" || raw == "false" || raw == "no" || raw == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              raw + "'");
}

}  // namespace fairsched
