#pragma once

// A small fixed-size thread pool with a parallel_for helper.
//
// The experiment harness runs many independent simulation instances (the
// paper averages over 100 workload windows per table cell); instances share
// nothing, so mapping them over a pool of worker threads is safe and gives
// near-linear speedup on multi-core hosts. Engines themselves stay
// single-threaded by design.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fairsched {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; the returned future propagates exceptions.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Runs body(i) for i in [0, n) across the pool and blocks until all
  // iterations finish. Exceptions from iterations are rethrown (first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Convenience: one-shot parallel for over a freshly created pool. Useful in
// benches where pool reuse does not matter.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace fairsched
