#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace fairsched {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: iterations may have very
  // uneven cost (e.g. REF instances vs. round-robin instances).
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  std::exception_ptr error;
  std::mutex error_mutex;

  const std::size_t lanes = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&, next, first_error]() {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= n || first_error->load()) return;
        try {
          body(i);
        } catch (...) {
          first_error->store(true);
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.wait();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

}  // namespace fairsched
