#pragma once

// Minimal command-line / environment flag parsing for the bench and example
// binaries.
//
// Flags are written `--name=value` (or `--name value`). For every flag there
// is an environment-variable fallback `FAIRSCHED_<NAME>` (upper-cased, dashes
// turned into underscores) so the whole bench suite can be scaled up or down
// without editing command lines, e.g. `FAIRSCHED_INSTANCES=100 ./bench_table1`.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fairsched {

class Flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed flags.
  Flags(int argc, const char* const* argv);

  // Lookup order: command line, then FAIRSCHED_<NAME> env var, then fallback.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  bool has(const std::string& name) const;

  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  static std::string env_name(const std::string& flag_name);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Strips leading/trailing ASCII whitespace (spaces and tabs).
std::string trim_whitespace(const std::string& s);

// Splits `s` on `sep`, trims ASCII whitespace around each token, and drops
// empty tokens. Shared by the policy-list, axis-spec and sweep-config
// parsers.
std::vector<std::string> split_and_trim(const std::string& s, char sep);

}  // namespace fairsched
