#pragma once

// A minimal JSON value, parser and escaping helpers.
//
// The experiment harness writes machine-readable JSON in several places
// (the BENCH_*.json perf baselines, sweep plans, shard partial-result
// artifacts) and, since the planner/executor split, also needs to read
// some of it back (the `merge` subcommand folds shard artifacts). This is
// a deliberately small, dependency-free implementation covering exactly
// the JSON the harness itself emits: objects, arrays, strings with
// escapes, numbers, booleans and null.
//
// Numbers keep their raw source text so integer fields round-trip exactly
// (a shard artifact stores Welford accumulator state; re-parsing it must
// reproduce the bits that were written — see util/stats.h). as_double()
// uses strtod, which round-trips a double printed with "%.17g".

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fairsched {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Typed accessors; each throws std::invalid_argument when the value has
  // a different kind (naming the expected one) or, for the integer forms,
  // when the raw number does not fit the target type.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  // array elements

  // Object access. at() throws std::invalid_argument naming the missing
  // key; find() returns nullptr instead.
  const JsonValue& at(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& fields() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  // raw number text, or string contents
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;  // source order
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
// Throws std::invalid_argument with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
// control characters). Shared by every JSON writer in the harness.
std::string json_escape(const std::string& s);

// Shortest-exact formatting for doubles destined to be re-parsed: "%.17g"
// round-trips every finite IEEE double through strtod bit-exactly.
std::string json_exact_double(double v);

}  // namespace fairsched
