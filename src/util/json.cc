#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace fairsched {

namespace {

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "bool";
    case JsonValue::Kind::kNumber:
      return "number";
    case JsonValue::Kind::kString:
      return "string";
    case JsonValue::Kind::kArray:
      return "array";
    case JsonValue::Kind::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(JsonValue::Kind want, JsonValue::Kind got) {
  throw std::invalid_argument(std::string("JSON: expected ") +
                              kind_name(want) + ", got " + kind_name(got));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) type_error(Kind::kBool, kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  return std::strtod(text_.c_str(), nullptr);
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text_.c_str(), &end, 10);
  if (errno == ERANGE || end == text_.c_str() || *end != '\0') {
    throw std::invalid_argument("JSON: '" + text_ +
                                "' is not a 64-bit integer");
  }
  return v;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  if (!text_.empty() && text_[0] == '-') {
    throw std::invalid_argument("JSON: '" + text_ + "' is negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text_.c_str(), &end, 10);
  if (errno == ERANGE || end == text_.c_str() || *end != '\0') {
    throw std::invalid_argument("JSON: '" + text_ +
                                "' is not a 64-bit unsigned integer");
  }
  return v;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) type_error(Kind::kString, kind_);
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) type_error(Kind::kArray, kind_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::fields()
    const {
  if (kind_ != Kind::kObject) type_error(Kind::kObject, kind_);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) type_error(Kind::kObject, kind_);
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (!value) {
    throw std::invalid_argument("JSON: missing key '" + key + "'");
  }
  return *value;
}

// Recursive-descent parser over the byte string. Offsets in error messages
// are 0-based byte positions.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    JsonValue value;
    switch (peek()) {
      case '{':
        parse_object(value);
        break;
      case '[':
        parse_array(value);
        break;
      case '"':
        value.kind_ = JsonValue::Kind::kString;
        value.text_ = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value.kind_ = JsonValue::Kind::kNull;
        break;
      default:
        value.kind_ = JsonValue::Kind::kNumber;
        value.text_ = parse_number();
        break;
    }
    --depth_;
    return value;
  }

  void parse_object(JsonValue& value) {
    value.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(JsonValue& value) {
    value.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      value.array_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point. Surrogate pairs are not combined
          // — the harness's own writers only emit \u00xx control escapes.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  std::string parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("malformed number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("malformed number");
    }
    return text_.substr(start, pos_ - start);
  }

  static constexpr int kMaxDepth = 64;
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_exact_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace fairsched
