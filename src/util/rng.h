#pragma once

// Deterministic, seedable random number generation for fairsched.
//
// All randomized components of the library (the RAND scheduler's coalition
// sampling, DIRECTCONTR's machine permutation, the synthetic workload
// generators, the experiment harness) draw from this generator so that every
// experiment is reproducible bit-for-bit from a 64-bit seed.
//
// The implementation is xoshiro256** (Blackman & Vigna) seeded through
// splitmix64, which is the recommended seeding procedure: it guarantees a
// well-mixed non-zero state from any 64-bit seed.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace fairsched {

// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

// Mixes two 64-bit values into one; handy for deriving per-instance seeds
// from (experiment seed, instance index) without correlation.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);

// FNV-1a over a byte string: a stable, platform-independent 64-bit hash
// for content-addressed keys (the sweep plan fingerprint and the disk
// cache tier's file names). Not cryptographic — collisions are guarded by
// storing and comparing the full key, never by the hash alone.
std::uint64_t hash_fnv1a64(const std::string& text);

// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can also
// be plugged into <random> facilities when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_u64(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform_double();

  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Standard normal via Marsaglia polar method.
  double normal();

  // Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation for large ones).
  std::uint64_t poisson(double mean);

  // Geometric number of trials until first success (support {1, 2, ...}).
  std::uint64_t geometric(double p);

  // A uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

// Samples from a Zipf distribution over {1, ..., n} with exponent `s`
// (probability of rank r proportional to r^-s). Precomputes the CDF once;
// sampling is a binary search. Used to distribute machines across
// organizations per the paper's experimental setup (Section 7.2).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);

  // Returns a rank in [1, n].
  std::uint32_t sample(Rng& rng) const;

  std::uint32_t n() const { return static_cast<std::uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace fairsched
