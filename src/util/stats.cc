#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fairsched {

StatsAccumulator StatsAccumulator::from_state(const State& state) {
  StatsAccumulator acc;
  acc.count_ = state.count;
  acc.mean_ = state.mean;
  acc.m2_ = state.m2;
  acc.min_ = state.min;
  acc.max_ = state.max;
  acc.sum_ = state.sum;
  return acc;
}

StatsAccumulator::State StatsAccumulator::state() const {
  return State{count_, mean_, m2_, min_, max_, sum_};
}

void StatsAccumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StatsAccumulator::merge(const StatsAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StatsAccumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double StatsAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatsAccumulator::stdev() const { return std::sqrt(variance()); }

double StatsAccumulator::min() const { return count_ == 0 ? 0.0 : min_; }

double StatsAccumulator::max() const { return count_ == 0 ? 0.0 : max_; }

double mean_of(const std::vector<double>& xs) {
  StatsAccumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double stdev_of(const std::vector<double>& xs) {
  StatsAccumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stdev();
}

double percentile_of(std::vector<double> xs, double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace fairsched
