#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fairsched {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_line = [&](std::ostringstream& out) {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto print_row = [&](std::ostringstream& out,
                       const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
          << '|';
    }
    out << '\n';
  };

  std::ostringstream out;
  print_line(out);
  print_row(out, header_);
  print_line(out);
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_line(out);
    } else {
      print_row(out, row);
    }
  }
  print_line(out);
  return out.str();
}

}  // namespace fairsched
