#pragma once

// Fixed-bucket log-scale latency histogram.
//
// The serve loop (src/serve) records one nanosecond-scale sample per
// scheduling decision and must answer percentile queries (p50/p95/p99/max)
// over millions of samples without storing them. An HDR-style two-level
// geometry keeps recording O(1) with no allocation after construction:
// samples are hashed into 64 power-of-two major buckets (by the position of
// the value's highest set bit), each split into kSubBuckets linear
// sub-buckets, giving a bounded relative error of 1/kSubBuckets (6.25%)
// over the full uint64 range. Bench drivers can reuse it for any
// nonnegative integer metric.
//
// Percentiles interpolate linearly inside the winning bucket, which keeps
// small-count histograms (tests, smoke runs) from collapsing onto bucket
// boundaries. merge() adds counts bucket-wise, so sharded or per-thread
// histograms fold exactly: merged percentiles equal the percentiles of the
// combined sample stream up to the same bucket resolution.
//
// Everything is deterministic given the sample sequence: the serve stats
// golden test byte-compares JSON containing these percentiles.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace fairsched {

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 16;  // per power of two
  static constexpr std::uint32_t kMajorBuckets = 64;
  static constexpr std::uint32_t kBuckets = kMajorBuckets * kSubBuckets;

  // The half-open value range [lower_bound(i), upper_bound(i)) counted by
  // bucket i. The first major covers [0, kSubBuckets) one value per
  // sub-bucket; major m >= 1 covers [2^(m+3), 2^(m+4)) in kSubBuckets
  // equal strides of 2^(m-1)... concretely: values below kSubBuckets map
  // to their own bucket, and each later bucket spans scale = 2^major /
  // kSubBuckets values.
  static constexpr std::uint64_t lower_bound(std::uint32_t bucket) {
    const std::uint32_t major = bucket / kSubBuckets;
    const std::uint32_t sub = bucket % kSubBuckets;
    if (major == 0) return sub;
    // bucket_of never reaches majors above 60 (the top bit of a uint64 is
    // bit 63 -> major 60); saturate so upper_bound stays monotone there.
    if (major > 60) return ~std::uint64_t{0};
    // Major m >= 1 covers [kSubBuckets * 2^(m-1), kSubBuckets * 2^m).
    const std::uint64_t base = std::uint64_t{kSubBuckets} << (major - 1);
    return base + sub * (base / kSubBuckets);
  }
  static constexpr std::uint64_t upper_bound(std::uint32_t bucket) {
    return bucket + 1 == kBuckets ? ~std::uint64_t{0}
                                  : lower_bound(bucket + 1);
  }

  static constexpr std::uint32_t bucket_of(std::uint64_t value) {
    if (value < kSubBuckets) return static_cast<std::uint32_t>(value);
    // highest set bit position; value >= kSubBuckets = 2^4, so bit >= 4.
    const std::uint32_t bit =
        63u - static_cast<std::uint32_t>(__builtin_clzll(value));
    // Major m covers bit positions log2(kSubBuckets) + m - 1; the sub
    // bucket is the next log2(kSubBuckets) bits below the top one.
    const std::uint32_t major = bit - 3;  // log2(kSubBuckets) - 1 = 3
    const std::uint32_t sub =
        static_cast<std::uint32_t>((value >> (bit - 4)) & (kSubBuckets - 1));
    return major * kSubBuckets + sub;
  }

  void record(std::uint64_t value) {
    counts_[bucket_of(value)]++;
    total_++;
    sum_ += value;
    max_ = std::max(max_, value);
  }

  std::uint64_t total_count() const { return total_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }
  std::uint64_t bucket_count(std::uint32_t bucket) const {
    return counts_[bucket];
  }

  // Value at quantile q in [0, 1]: finds the bucket holding the rank
  // ceil(q * total) sample and interpolates linearly across the bucket's
  // inclusive value span [lo, min(hi, observed max)] by the rank's
  // position within the bucket. Buckets one value wide (all values below
  // kSubBuckets) report exactly; the interpolation error elsewhere is
  // bounded by the bucket width (a 1/kSubBuckets relative error). Returns
  // 0 on an empty histogram.
  std::uint64_t value_at_quantile(double q) const {
    if (total_ == 0) return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total_))));
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (seen + counts_[b] >= rank) {
        const std::uint64_t lo = lower_bound(b);
        const std::uint64_t hi = std::min(upper_bound(b) - 1, max_);
        if (hi <= lo) return lo;
        const std::uint64_t into = rank - seen;  // 1..counts_[b]
        return lo + (hi - lo) * into / counts_[b];
      }
      seen += counts_[b];
    }
    return max_;
  }

  std::uint64_t p50() const { return value_at_quantile(0.50); }
  std::uint64_t p95() const { return value_at_quantile(0.95); }
  std::uint64_t p99() const { return value_at_quantile(0.99); }

  // Bucket-wise fold of `other` into *this; exact (no resampling).
  void merge(const LatencyHistogram& other) {
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      counts_[b] += other.counts_[b];
    }
    total_ += other.total_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace fairsched
