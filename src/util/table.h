#pragma once

// Minimal ASCII table formatter used by the benchmark binaries to print the
// paper's tables/figure series in a readable, diffable layout.

#include <string>
#include <vector>

namespace fairsched {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Inserts a horizontal separator before the next row.
  void add_separator();

  std::string to_string() const;

  static std::string format_double(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fairsched
