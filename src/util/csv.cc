#include "util/csv.h"

namespace fairsched {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace fairsched
