#pragma once

// Streaming and batch statistics used by the experiment harness
// (per-instance fairness ratios are aggregated into the mean/stdev columns
// the paper's Tables 1-2 report).

#include <cstddef>
#include <vector>

namespace fairsched {

// Numerically stable streaming accumulator (Welford's algorithm).
class StatsAccumulator {
 public:
  // The accumulator's exact internal state, for serialization. A sharded
  // sweep writes each cell's accumulator into its partial-result artifact
  // and the merge step restores it; round-tripping the state (rather than
  // re-adding samples) is what keeps merged aggregates bit-identical to a
  // single-process run (exp/sweep_artifact.h).
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  StatsAccumulator() = default;
  static StatsAccumulator from_state(const State& state);
  State state() const;

  void add(double x);
  void merge(const StatsAccumulator& other);

  std::size_t count() const { return count_; }
  double mean() const;
  // Sample variance / stdev (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stdev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Batch helpers.
double mean_of(const std::vector<double>& xs);
double stdev_of(const std::vector<double>& xs);
// Linear-interpolation percentile, q in [0, 1]. Sorts a copy.
double percentile_of(std::vector<double> xs, double q);

}  // namespace fairsched
