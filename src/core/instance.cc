#include "core/instance.h"

#include <algorithm>
#include <stdexcept>

namespace fairsched {

double Instance::share_of(OrgId u) const {
  if (total_machines_ == 0) return 0.0;
  return static_cast<double>(orgs_[u].machines) /
         static_cast<double>(total_machines_);
}

Instance Instance::restricted_to(const std::vector<OrgId>& orgs) const {
  InstanceBuilder builder;
  std::vector<OrgId> new_id(num_orgs(), kNoOrg);
  for (OrgId u : orgs) {
    if (u >= num_orgs()) {
      throw std::out_of_range("restricted_to: organization id out of range");
    }
    new_id[u] = builder.add_org(orgs_[u].name, orgs_[u].machines);
  }
  for (OrgId u : orgs) {
    for (const Job& j : jobs_[u]) {
      builder.add_job(new_id[u], j.release, j.processing);
    }
  }
  return std::move(builder).build();
}

OrgId InstanceBuilder::add_org(std::string name, std::uint32_t machines) {
  orgs_.push_back(Organization{std::move(name), machines});
  jobs_.emplace_back();
  return static_cast<OrgId>(orgs_.size() - 1);
}

void InstanceBuilder::add_job(OrgId org, Time release, Time processing) {
  if (org >= orgs_.size()) {
    throw std::out_of_range("add_job: unknown organization");
  }
  if (release < 0) {
    throw std::invalid_argument("add_job: negative release time");
  }
  if (processing <= 0) {
    throw std::invalid_argument("add_job: processing time must be positive");
  }
  jobs_[org].push_back(Job{org, 0, release, processing});
}

Instance InstanceBuilder::build() && {
  Instance inst;
  inst.orgs_ = std::move(orgs_);
  inst.jobs_ = std::move(jobs_);

  bool any_jobs = false;
  for (OrgId u = 0; u < inst.orgs_.size(); ++u) {
    auto& jobs = inst.jobs_[u];
    // Stable sort: preserves submission order among equal releases, which
    // defines the organization's internal priority (the paper assumes jobs
    // of each organization are started in the order they are presented).
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const Job& a, const Job& b) {
                       return a.release < b.release;
                     });
    for (std::uint32_t i = 0; i < jobs.size(); ++i) {
      jobs[i].org = u;
      jobs[i].index = i;
      inst.total_work_ += jobs[i].processing;
      inst.last_release_ = std::max(inst.last_release_, jobs[i].release);
    }
    inst.num_jobs_ += jobs.size();
    any_jobs = any_jobs || !jobs.empty();
  }

  inst.machine_begin_.resize(inst.orgs_.size());
  MachineId next = 0;
  for (OrgId u = 0; u < inst.orgs_.size(); ++u) {
    inst.machine_begin_[u] = next;
    next += inst.orgs_[u].machines;
  }
  inst.total_machines_ = next;
  inst.machine_owner_.resize(next);
  for (OrgId u = 0; u < inst.orgs_.size(); ++u) {
    for (MachineId m = inst.machine_begin_[u]; m < inst.machine_end(u); ++m) {
      inst.machine_owner_[m] = u;
    }
  }

  if (any_jobs && inst.total_machines_ == 0) {
    throw std::invalid_argument("build: jobs present but no machines");
  }
  return inst;
}

}  // namespace fairsched
