#include "core/coalition.h"

#include <stdexcept>

namespace fairsched {

std::vector<OrgId> Coalition::members() const {
  std::vector<OrgId> out;
  out.reserve(size());
  for (OrgId u = 0; u < 32; ++u) {
    if (contains(u)) out.push_back(u);
  }
  return out;
}

std::vector<Coalition> Coalition::subsets() const {
  std::vector<Coalition> out;
  out.reserve(std::size_t{1} << size());
  for_each_subset(*this, [&](Coalition c) { out.push_back(c); });
  return out;
}

std::vector<std::vector<Coalition>> Coalition::subsets_by_size() const {
  std::vector<std::vector<Coalition>> by_size(size() + 1);
  for_each_subset(*this, [&](Coalition c) { by_size[c.size()].push_back(c); });
  return by_size;
}

ShapleyWeights::ShapleyWeights(std::uint32_t k) {
  if (k == 0 || k > Coalition::kMaxOrgs) {
    throw std::invalid_argument("ShapleyWeights: k out of range");
  }
  // weight(s) = (s-1)! (k-s)! / k!
  std::vector<double> factorial(k + 1, 1.0);
  for (std::uint32_t i = 1; i <= k; ++i) {
    factorial[i] = factorial[i - 1] * static_cast<double>(i);
  }
  weights_.resize(k + 1, 0.0);
  for (std::uint32_t s = 1; s <= k; ++s) {
    weights_[s] = factorial[s - 1] * factorial[k - s] / factorial[k];
  }
}

}  // namespace fairsched
