#include "core/schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace fairsched {

void Schedule::add(const Placement& p) {
  placements_.push_back(p);
  if (p.org >= starts_.size()) starts_.resize(p.org + 1);
  auto& org_starts = starts_[p.org];
  if (p.index >= org_starts.size()) org_starts.resize(p.index + 1, kNoTime);
  org_starts[p.index] = p.start;
}

std::optional<Time> Schedule::start_of(OrgId org, std::uint32_t index) const {
  if (org >= starts_.size() || index >= starts_[org].size()) {
    return std::nullopt;
  }
  const Time s = starts_[org][index];
  if (s == kNoTime) return std::nullopt;
  return s;
}

std::optional<Time> Schedule::completion_of(const Instance& inst, OrgId org,
                                            std::uint32_t index) const {
  auto s = start_of(org, index);
  if (!s) return std::nullopt;
  return *s + inst.job(org, index).processing;
}

std::optional<std::string> Schedule::check_machine_exclusive(
    const Instance& inst) const {
  // Group placements per machine and sort by start.
  std::map<MachineId, std::vector<const Placement*>> per_machine;
  for (const Placement& p : placements_) {
    if (p.machine >= inst.total_machines()) {
      return "placement on unknown machine " + std::to_string(p.machine);
    }
    per_machine[p.machine].push_back(&p);
  }
  for (auto& [machine, ps] : per_machine) {
    std::sort(ps.begin(), ps.end(), [](const Placement* a, const Placement* b) {
      return a->start < b->start;
    });
    for (std::size_t i = 1; i < ps.size(); ++i) {
      const Placement& prev = *ps[i - 1];
      const Time prev_end =
          prev.start + inst.job(prev.org, prev.index).processing;
      if (ps[i]->start < prev_end) {
        std::ostringstream msg;
        msg << "machine " << machine << ": job (" << ps[i]->org << ","
            << ps[i]->index << ") starts at " << ps[i]->start
            << " before previous job finishes at " << prev_end;
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> Schedule::check_fifo(const Instance& inst) const {
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    const auto jobs = inst.jobs_of(u);
    static const std::vector<Time> kEmptyStarts;
    const auto& org_starts = u < starts_.size() ? starts_[u] : kEmptyStarts;
    Time prev_start = kNoTime;
    bool gap_seen = false;
    for (std::uint32_t i = 0; i < jobs.size(); ++i) {
      const bool started = i < org_starts.size() && org_starts[i] != kNoTime;
      if (!started) {
        gap_seen = true;
        continue;
      }
      if (gap_seen) {
        std::ostringstream msg;
        msg << "org " << u << ": job " << i
            << " started although an earlier job of the same organization "
               "was never started (FIFO prefix violated)";
        return msg.str();
      }
      const Time s = org_starts[i];
      if (s < jobs[i].release) {
        std::ostringstream msg;
        msg << "org " << u << ": job " << i << " started at " << s
            << " before its release " << jobs[i].release;
        return msg.str();
      }
      if (prev_start != kNoTime && s < prev_start) {
        std::ostringstream msg;
        msg << "org " << u << ": job " << i << " starts at " << s
            << " before job " << i - 1 << " (FIFO order violated)";
        return msg.str();
      }
      prev_start = s;
    }
  }
  return std::nullopt;
}

std::optional<std::string> Schedule::check_greedy(const Instance& inst,
                                                  Time horizon) const {
  // Event sweep. State changes only at releases, starts and completions;
  // greediness is evaluated just after each event time.
  struct Event {
    Time t;
    int kind;  // 0 = completion, 1 = start, 2 = release (order irrelevant
               // because we evaluate after applying all events at t)
    OrgId org;
  };
  std::vector<Event> events;
  for (const Placement& p : placements_) {
    const Time end = p.start + inst.job(p.org, p.index).processing;
    events.push_back({p.start, 1, p.org});
    events.push_back({end, 0, p.org});
  }
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    for (const Job& j : inst.jobs_of(u)) {
      events.push_back({j.release, 2, u});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });

  // Per organization: number of released jobs and number of started jobs
  // so far; the organization is waiting iff started < released (the next
  // FIFO job is released but not running yet).
  std::vector<std::uint32_t> released(inst.num_orgs(), 0);
  std::vector<std::uint32_t> started(inst.num_orgs(), 0);
  std::uint32_t busy = 0;
  std::uint32_t waiting_orgs = 0;

  auto update_waiting = [&](OrgId u, auto&& fn) {
    const bool was_waiting = started[u] < released[u];
    fn();
    const bool is_waiting = started[u] < released[u];
    if (was_waiting != is_waiting) waiting_orgs += is_waiting ? 1 : -1;
  };

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].t;
    while (i < events.size() && events[i].t == t) {
      const Event& e = events[i];
      switch (e.kind) {
        case 0:
          --busy;
          break;
        case 1:
          ++busy;
          update_waiting(e.org, [&] { ++started[e.org]; });
          break;
        case 2:
          update_waiting(e.org, [&] { ++released[e.org]; });
          break;
      }
      ++i;
    }
    if (t >= horizon) break;
    if (busy < inst.total_machines() && waiting_orgs > 0) {
      std::ostringstream msg;
      msg << "not greedy: at time " << t << ", " << busy << "/"
          << inst.total_machines()
          << " machines busy while released jobs are waiting";
      return msg.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> Schedule::validate(const Instance& inst,
                                              Time horizon) const {
  if (auto err = check_machine_exclusive(inst)) return err;
  if (auto err = check_fifo(inst)) return err;
  if (auto err = check_greedy(inst, horizon)) return err;
  return std::nullopt;
}

}  // namespace fairsched
