#pragma once

// Schedule: the set of (job, start time, machine) placements produced by a
// scheduling algorithm (the paper's sigma), plus validators for the three
// feasibility invariants the paper requires:
//   * machine exclusivity — a machine runs at most one job at a time,
//   * per-organization FIFO — an organization's jobs start in index order,
//   * greediness — no machine is left idle while a released, unstarted job
//     is waiting (Section 2, "greedy schedules").

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace fairsched {

struct Placement {
  OrgId org = kNoOrg;
  std::uint32_t index = 0;  // job index within the organization
  Time start = 0;
  MachineId machine = kNoMachine;

  friend bool operator==(const Placement&, const Placement&) = default;
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::uint32_t num_orgs) : starts_(num_orgs) {}

  void add(const Placement& p);

  // Pre-sizes the placement list (performance hint for engines that know
  // the job count up front).
  void reserve(std::size_t n) { placements_.reserve(n); }

  const std::vector<Placement>& placements() const { return placements_; }
  std::size_t size() const { return placements_.size(); }

  // Start time of job (org, index), if it was started.
  std::optional<Time> start_of(OrgId org, std::uint32_t index) const;

  // Completion time given the instance's processing times.
  std::optional<Time> completion_of(const Instance& inst, OrgId org,
                                    std::uint32_t index) const;

  std::uint32_t num_started(OrgId org) const {
    return org < starts_.size()
               ? static_cast<std::uint32_t>(starts_[org].size())
               : 0;
  }

  // --- Validators -------------------------------------------------------
  // Each returns std::nullopt when the invariant holds, otherwise a
  // human-readable description of the first violation found.

  // Machine exclusivity: placements on the same machine do not overlap in
  // [start, start + processing).
  std::optional<std::string> check_machine_exclusive(
      const Instance& inst) const;

  // FIFO: within each organization, start times are non-decreasing in job
  // index, every started job was released, and no job is started before a
  // lower-indexed one of the same organization remains unstarted forever
  // while this one runs (prefix property).
  std::optional<std::string> check_fifo(const Instance& inst) const;

  // Greediness up to `horizon`: at any moment some machine is idle only if
  // no released job is waiting. Checked by sweeping events.
  std::optional<std::string> check_greedy(const Instance& inst,
                                          Time horizon) const;

  // All three checks; nullopt if the schedule is a feasible greedy schedule.
  std::optional<std::string> validate(const Instance& inst,
                                      Time horizon) const;

 private:
  std::vector<Placement> placements_;
  // starts_[org][index] = start time (kNoTime when index gap, which FIFO
  // checking reports).
  std::vector<std::vector<Time>> starts_;
};

}  // namespace fairsched
