#pragma once

// Instance: the platform (organizations and their machine counts) together
// with the workload (each organization's FIFO job list).
//
// Instances are immutable once built; InstanceBuilder performs validation
// (non-negative releases, positive processing times, per-organization FIFO
// numbering). Machines receive global ids grouped by organization:
// organization u owns the contiguous block [machine_begin(u), machine_end(u)).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"

namespace fairsched {

namespace serve {
class LiveInstance;  // the one sanctioned mutator (see the friend note)
}  // namespace serve

struct Organization {
  std::string name;
  std::uint32_t machines = 0;
};

class Instance {
 public:
  std::uint32_t num_orgs() const {
    return static_cast<std::uint32_t>(orgs_.size());
  }
  const Organization& org(OrgId u) const { return orgs_[u]; }

  std::uint32_t total_machines() const { return total_machines_; }
  std::uint32_t machines_of(OrgId u) const { return orgs_[u].machines; }
  MachineId machine_begin(OrgId u) const { return machine_begin_[u]; }
  MachineId machine_end(OrgId u) const {
    return machine_begin_[u] + orgs_[u].machines;
  }
  // Owner of a global machine id (O(1): precomputed).
  OrgId machine_owner(MachineId m) const { return machine_owner_[m]; }

  // Jobs of organization u in FIFO order.
  std::span<const Job> jobs_of(OrgId u) const {
    return {jobs_[u].data(), jobs_[u].size()};
  }
  std::size_t num_jobs() const { return num_jobs_; }
  const Job& job(OrgId u, std::uint32_t index) const {
    return jobs_[u][index];
  }

  // Sum of processing times over all jobs.
  std::int64_t total_work() const { return total_work_; }

  // Latest release time over all jobs (0 if there are none).
  Time last_release() const { return last_release_; }

  // Machine share of organization u (fraction of the global pool), the
  // target share used by the fair-share family of algorithms.
  double share_of(OrgId u) const;

  // A copy of this instance restricted to the organizations in `orgs`
  // (given as org indices into *this*). Used by REF/RAND to build
  // subcoalition worlds. Organization ids are preserved.
  Instance restricted_to(const std::vector<OrgId>& orgs) const;

 private:
  friend class InstanceBuilder;
  // serve::LiveInstance appends released-in-order jobs to a running
  // instance (the online scheduler's workload is not known up front). It
  // preserves every invariant InstanceBuilder establishes — per-org FIFO
  // numbering, release-sorted job lists, positive processing times — and
  // the platform (orgs, machines) stays frozen; see src/serve/
  // live_instance.h for the contract. Everything else still sees Instance
  // as immutable.
  friend class serve::LiveInstance;

  std::vector<Organization> orgs_;
  std::vector<std::vector<Job>> jobs_;
  std::vector<MachineId> machine_begin_;
  std::vector<OrgId> machine_owner_;
  std::uint32_t total_machines_ = 0;
  std::size_t num_jobs_ = 0;
  std::int64_t total_work_ = 0;
  Time last_release_ = 0;
};

class InstanceBuilder {
 public:
  // Returns the new organization's id.
  OrgId add_org(std::string name, std::uint32_t machines);

  // Appends a job to `org`'s FIFO stream. Jobs may be added in any release
  // order; build() sorts each organization's jobs by (release, insertion
  // order) and assigns FIFO indices. Throws std::invalid_argument on
  // non-positive processing time or negative release.
  void add_job(OrgId org, Time release, Time processing);

  // Validates and produces the immutable instance. Throws on an empty
  // platform (no machines at all) with a non-empty workload.
  Instance build() &&;

 private:
  std::vector<Organization> orgs_;
  std::vector<std::vector<Job>> jobs_;
};

}  // namespace fairsched
