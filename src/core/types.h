#pragma once

// Fundamental model types shared across the library.
//
// The paper's model (Section 2): a set of organizations, each owning a
// cluster of identical machines and producing a FIFO stream of sequential
// jobs. Time is discrete. Jobs are non-preemptible and non-clairvoyant
// (processing time unknown until completion).

#include <cstdint>
#include <limits>

namespace fairsched {

// Discrete time moment. The paper's T is a discrete set; we use int64 so
// utilities over long horizons stay exact.
using Time = std::int64_t;

inline constexpr Time kNoTime = std::numeric_limits<Time>::min();
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();

// Organization index (u in the paper's O^(u)).
using OrgId = std::uint32_t;

// Global machine index; ownership is resolved through the Instance.
using MachineId = std::uint32_t;

inline constexpr OrgId kNoOrg = std::numeric_limits<OrgId>::max();
inline constexpr MachineId kNoMachine = std::numeric_limits<MachineId>::max();

// Utilities are stored in exact integer *half-units*: HalfUtil = 2 * psi_sp.
// The strategy-proof utility (Eq. 3) involves averages of two integers, so
// doubling keeps everything integral; see metrics/utility.h.
using HalfUtil = std::int64_t;

// A sequential job. `index` is the submission position within its
// organization; feasible schedules must start an organization's jobs in
// index order (the paper's FIFO requirement).
struct Job {
  OrgId org = kNoOrg;
  std::uint32_t index = 0;
  Time release = 0;
  Time processing = 1;

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace fairsched
