#pragma once

// Coalition: a subset of organizations represented as a bitmask.
//
// REF maintains one schedule per subcoalition of the grand coalition
// (2^k of them), and Shapley computations sum over subsets; this type
// provides the enumeration helpers those loops need. k is bounded by 31.

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace fairsched {

class Coalition {
 public:
  using Mask = std::uint32_t;
  static constexpr std::uint32_t kMaxOrgs = 31;

  constexpr Coalition() = default;
  constexpr explicit Coalition(Mask mask) : mask_(mask) {}

  // The grand coalition over k organizations.
  static constexpr Coalition grand(std::uint32_t k) {
    return Coalition((k >= 32 ? 0 : (Mask{1} << k)) - 1);
  }
  static constexpr Coalition empty() { return Coalition(0); }
  static constexpr Coalition singleton(OrgId u) {
    return Coalition(Mask{1} << u);
  }

  constexpr Mask mask() const { return mask_; }
  constexpr bool contains(OrgId u) const {
    // Organization ids past the mask width only ever meet the two
    // saturated masks: grand(k >= 32) (all ones — every org is a member,
    // however many there are) and empty(). A shift by u >= 32 would be
    // undefined, so answer from the saturation directly.
    if (u >= 32) return mask_ == static_cast<Mask>(-1);
    return (mask_ >> u) & Mask{1};
  }
  constexpr bool is_empty() const { return mask_ == 0; }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(__builtin_popcount(mask_));
  }

  constexpr Coalition with(OrgId u) const {
    return Coalition(mask_ | (Mask{1} << u));
  }
  constexpr Coalition without(OrgId u) const {
    return Coalition(mask_ & ~(Mask{1} << u));
  }
  constexpr bool subset_of(Coalition other) const {
    return (mask_ & other.mask_) == mask_;
  }

  // Members as a sorted list of org ids.
  std::vector<OrgId> members() const;

  // All subsets of this coalition, including the empty set and itself,
  // in increasing mask order.
  std::vector<Coalition> subsets() const;

  // All subsets grouped by size s = 0..size(); REF processes coalitions in
  // increasing size so subcoalition values are ready when needed.
  std::vector<std::vector<Coalition>> subsets_by_size() const;

  friend constexpr bool operator==(Coalition, Coalition) = default;

 private:
  Mask mask_ = 0;
};

// Iterates proper and improper subsets of `mask` via the standard
// (sub - 1) & mask trick; calls fn(Coalition) for each subset including the
// empty one and mask itself.
template <typename Fn>
void for_each_subset(Coalition coalition, Fn&& fn) {
  const Coalition::Mask mask = coalition.mask();
  Coalition::Mask sub = mask;
  for (;;) {
    fn(Coalition(sub));
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

// Shapley weight table: weight(s, k) = (s-1)! (k-s)! / k! for a coalition of
// size s within a game of k players (the weight of the marginal contribution
// of the joining player completing a set of size s). Exact rationals are not
// required downstream; doubles are accurate for k <= 20.
class ShapleyWeights {
 public:
  explicit ShapleyWeights(std::uint32_t k);
  double weight(std::uint32_t coalition_size_with_player) const {
    return weights_[coalition_size_with_player];
  }
  std::uint32_t k() const {
    return static_cast<std::uint32_t>(weights_.size()) - 1;
  }

 private:
  std::vector<double> weights_;  // index = size including the player, 1..k
};

}  // namespace fairsched
