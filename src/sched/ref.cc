#include "sched/ref.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "sched/org_index.h"

namespace fairsched {

double SpUtilityFn::eval(const Instance& inst, const Schedule& schedule,
                         OrgId org, Time t) const {
  return static_cast<double>(sp_org_half_utility(inst, schedule, org, t)) /
         2.0;
}

double CompletedWorkUtilityFn::eval(const Instance& inst,
                                    const Schedule& schedule, OrgId org,
                                    Time t) const {
  double total = 0.0;
  const auto jobs = inst.jobs_of(org);
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    if (auto s = schedule.start_of(org, i)) {
      if (*s < t) {
        total += static_cast<double>(
            std::min<Time>(jobs[i].processing, t - *s));
      }
    }
  }
  return total;
}

RefScheduler::RefScheduler(const Instance& inst, RefOptions options)
    : inst_(&inst), options_(options), grand_(Coalition::grand(inst.num_orgs())) {
  const std::uint32_t k = inst.num_orgs();
  if (k == 0) throw std::invalid_argument("RefScheduler: empty instance");
  if (k > kMaxOrgs) {
    throw std::invalid_argument(
        "RefScheduler: too many organizations for the exponential reference "
        "algorithm (max 16)");
  }
  engines_.resize(std::size_t{1} << k);
  agg_.assign(std::size_t{1} << k, Engine::AggSnapshot{});
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    engines_[mask] = std::make_unique<Engine>(inst, Coalition(mask));
    engines_[mask]->mirror_aggregate(&agg_[mask]);
  }
  vcache_.assign(engines_.size(), 0.0);
  weights_.reserve(k);
  for (std::uint32_t s = 1; s <= k; ++s) weights_.emplace_back(s);
}

const std::vector<double>& RefScheduler::contributions2_of(
    Coalition c, Time t, Coalition relevant) const {
  std::vector<double>& phi2 = phi2_scratch_;
  phi2.assign(inst_->num_orgs(), 0.0);
  const ShapleyWeights& w = weights_[c.size() - 1];
  // Pass 1: one O(1) closed-form read per subcoalition off the flat
  // aggregate mirror — the identical expression Engine::value2_at
  // evaluates (see Engine::AggSnapshot), so the result is bit-identical to
  // advancing the engine to t and reading value2(). The global (time,
  // size) order guarantees no subcoalition has an unprocessed completion
  // at or before t, which is value2_at's validity condition.
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty()) return;
    const Engine::AggSnapshot& s = agg_[sub.mask()];
    const Time d = t - s.at;
    vcache_[sub.mask()] = static_cast<double>(
        s.psi2 + 2 * s.work * d + static_cast<HalfUtil>(s.running) * d * (d + 1));
  });
  // Pass 2: the subset formula (Eq. 1). Subset enumeration order and the
  // ascending member order of the inner loop match the historical scan, so
  // every floating-point accumulation happens in the same sequence. The
  // inner loop visits only members of `relevant`: phi2[u] accumulators are
  // independent, so skipping orgs the caller will not read leaves the
  // computed entries bit-identical while cutting the pass by |relevant|/|c|.
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty()) return;
    const double v_sub = vcache_[sub.mask()];
    const double weight = w.weight(sub.size());
    for (Coalition::Mask rest = sub.mask() & relevant.mask(); rest != 0;
         rest &= rest - 1) {
      const OrgId u = static_cast<OrgId>(__builtin_ctz(rest));
      const Coalition::Mask without = sub.mask() & ~(Coalition::Mask{1} << u);
      const double v_without = without == 0 ? 0.0 : vcache_[without];
      phi2[u] += weight * (v_sub - v_without);
    }
  });
  return phi2;
}

double RefScheduler::generic_distance(Coalition c, OrgId u, Time t,
                                      const std::vector<double>& phi,
                                      const std::vector<double>& psi) const {
  const Engine& e = *engines_[c.mask()];
  const UtilityFunction& util = *options_.generic_utility;
  // Tentatively start u's front job at t and evaluate the utility delta one
  // step ahead (at t; for psi_sp and any non-clairvoyant utility the value
  // at t itself cannot change by starting a job at t).
  Schedule tentative = e.schedule();
  const std::uint32_t index = e.completed(u) + e.running(u);
  tentative.add(Placement{u, index, t, kNoMachine});
  const double delta =
      util.eval(*inst_, tentative, u, t + 1) -
      util.eval(*inst_, e.schedule(), u, t + 1);
  const double s = static_cast<double>(c.size());
  double dist = std::abs(phi[u] + delta / s - psi[u] - delta);
  for (OrgId v = 0; v < inst_->num_orgs(); ++v) {
    if (v == u || !c.contains(v)) continue;
    dist += std::abs(phi[v] + delta / s - psi[v]);
  }
  return dist;
}

OrgId RefScheduler::select_sp(Coalition c,
                              const std::vector<double>& phi2) const {
  // Specialized psi_sp rule (Fig. 3): argmax of phi - psi among waiting.
  // phi2 is the hoisted per-burst contribution vector (see
  // process_coalition_at); psi2 reads are O(1) lazy folds.
  const Engine& e = *engines_[c.mask()];
  OrgId best = kNoOrg;
  double best_deficit = 0.0;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    if (!c.contains(u) || e.waiting(u) == 0) continue;
    const double deficit = phi2[u] - static_cast<double>(e.psi2(u));
    if (best == kNoOrg || deficit > best_deficit) {
      best = u;
      best_deficit = deficit;
    }
  }
  return best;
}

OrgId RefScheduler::select_generic(Coalition c, Time t) {
  Engine& e = *engines_[c.mask()];
  // Generic Distance rule (Fig. 1).
  const UtilityFunction& util = *options_.generic_utility;
  std::vector<double> psi(inst_->num_orgs(), 0.0);
  std::vector<double> phi(inst_->num_orgs(), 0.0);
  // v(C', t) for the Shapley formula, from the generic utility.
  const ShapleyWeights& w = weights_[c.size() - 1];
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty()) return;
    double v_sub = 0.0;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (sub.contains(u)) {
        v_sub += util.eval(*inst_, engines_[sub.mask()]->schedule(), u, t);
      }
    }
    const double weight = w.weight(sub.size());
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (!sub.contains(u)) continue;
      const Coalition without = sub.without(u);
      double v_without = 0.0;
      if (!without.is_empty()) {
        for (OrgId x = 0; x < inst_->num_orgs(); ++x) {
          if (without.contains(x)) {
            v_without +=
                util.eval(*inst_, engines_[without.mask()]->schedule(), x, t);
          }
        }
      }
      phi[u] += weight * (v_sub - v_without);
    }
  });
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    if (c.contains(u)) {
      psi[u] = util.eval(*inst_, e.schedule(), u, t);
    }
  }
  OrgId best = kNoOrg;
  double best_dist = 0.0;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    if (!c.contains(u) || e.waiting(u) == 0) continue;
    const double dist = generic_distance(c, u, t, phi, psi);
    if (best == kNoOrg || dist < best_dist) {
      best = u;
      best_dist = dist;
    }
  }
  return best;
}

void RefScheduler::process_coalition_at(Coalition c, Time t) {
  Engine& e = *engines_[c.mask()];
  e.advance_to(t);
  if (!e.needs_decision()) return;
  if (options_.generic_utility == nullptr) {
    // Subcoalition engines are NOT advanced here: by the global loop's
    // (time, size) order they have no unprocessed events at or before t,
    // so their values are O(1) closed-form reads at t (value2_at) off
    // untouched engines — no O(2^s) clock-advance sweep per burst.
    //
    // The contribution vector is burst-invariant: starting a job at t adds
    // no *accrued* value at t itself, so no subcoalition value v(C', t) —
    // and hence no Shapley sum — changes until the clock moves. Hoisting
    // the O(2^s) subset formula out of the decision loop turns a burst of
    // m decisions from m full Shapley evaluations into one.
    //
    // Only orgs with a waiting job can be selected, and the waiting set
    // cannot grow while the clock stands still (releases happen only in
    // advance_to), so the Shapley pass is restricted to those orgs.
    Coalition::Mask wmask = 0;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (c.contains(u) && e.waiting(u) > 0) {
        wmask |= Coalition::Mask{1} << u;
      }
    }
    if ((wmask & (wmask - 1)) == 0) {
      // Exactly one org has waiting jobs (needs_decision guarantees at
      // least one): every selection in this burst is forced — the argmax
      // over a singleton — so the Shapley pass is skipped entirely. This
      // covers all bursts of singleton coalitions and, in underloaded
      // stretches, most release wake-ups of larger ones.
      const OrgId u = static_cast<OrgId>(__builtin_ctz(wmask));
      while (e.needs_decision()) {
        e.start_front(u);
      }
      return;
    }
    const std::vector<double>& phi2 = contributions2_of(c, t, Coalition(wmask));
    while (e.needs_decision()) {
      const OrgId u = select_sp(c, phi2);
      if (u == kNoOrg) {
        throw std::logic_error("RefScheduler: no selectable organization");
      }
      e.start_front(u);
    }
    return;
  }
  // Generic Distance rule: bring every subcoalition to t (closed-form
  // accrual only, their events at times <= t are already processed) and
  // evaluate per decision, completely unhoisted — an arbitrary
  // UtilityFunction may react to schedule changes in ways we do not
  // control.
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty() || sub == c) return;
    engines_[sub.mask()]->advance_to(t);
  });
  while (e.needs_decision()) {
    const OrgId u = select_generic(c, t);
    if (u == kNoOrg) {
      throw std::logic_error("RefScheduler: no selectable organization");
    }
    e.start_front(u);
  }
}

void RefScheduler::run(Time horizon) {
  if (ran_) throw std::logic_error("RefScheduler::run called twice");
  ran_ = true;

  // Global wake-up loop over all coalitions, ordered by (time, coalition
  // size, mask) — the same lexicographic total order the former
  // std::priority_queue<tuple> used (KeyedArgmin breaks key ties toward
  // the lower id, i.e. the lower mask), so the processing sequence is
  // identical. A coalition's entry is re-armed after each processing;
  // entries never go stale because only processing a coalition changes its
  // own wake-up time. The tournament tree stays L1-resident (2^(k+1)
  // nodes) and a re-arm is k+1 node updates.
  //
  // Entries are armed with next_decision_time(), not next_event(): while a
  // coalition has no free machine, releases cannot enable a decision, so
  // the skipped wake-ups are batch-processed (in identical order) by the
  // advance_to of the next completion-time wake — the decision sequence is
  // unchanged and the loop pops a fraction of the entries.
  KeyedArgmin<std::pair<Time, std::uint32_t>> queue;
  queue.init(static_cast<std::uint32_t>(engines_.size()));
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    const Time t = engines_[mask]->next_decision_time();
    if (t != kTimeInfinity && t < horizon) {
      queue.set(mask, {t, Coalition(mask).size()});
    }
  }
  for (;;) {
    const std::uint32_t mask = queue.argmin();
    if (mask == KeyedArgmin<std::pair<Time, std::uint32_t>>::kNone) break;
    // The armed time: unchanged since arming, because no other coalition's
    // processing touches this engine.
    const Time t = engines_[mask]->next_decision_time();
    process_coalition_at(Coalition(mask), t);
    const Time next = engines_[mask]->next_decision_time();
    if (next != kTimeInfinity && next < horizon) {
      queue.set(mask, {next, Coalition(mask).size()});
    } else {
      queue.clear(mask);
    }
  }
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    engines_[mask]->advance_to(horizon);
  }
}

std::vector<HalfUtil> RefScheduler::utilities2() const {
  std::vector<HalfUtil> out(inst_->num_orgs(), 0);
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    out[u] = grand_engine().psi2(u);
  }
  return out;
}

std::vector<double> RefScheduler::contributions() const {
  std::vector<double> phi2 =
      contributions2_of(grand_, grand_engine().now(), grand_);
  for (double& p : phi2) p /= 2.0;
  return phi2;
}

}  // namespace fairsched
