#include "sched/ref.h"

#include <cmath>
#include <queue>
#include <stdexcept>
#include <tuple>

namespace fairsched {

double SpUtilityFn::eval(const Instance& inst, const Schedule& schedule,
                         OrgId org, Time t) const {
  return static_cast<double>(sp_org_half_utility(inst, schedule, org, t)) /
         2.0;
}

double CompletedWorkUtilityFn::eval(const Instance& inst,
                                    const Schedule& schedule, OrgId org,
                                    Time t) const {
  double total = 0.0;
  const auto jobs = inst.jobs_of(org);
  for (std::uint32_t i = 0; i < jobs.size(); ++i) {
    if (auto s = schedule.start_of(org, i)) {
      if (*s < t) {
        total += static_cast<double>(
            std::min<Time>(jobs[i].processing, t - *s));
      }
    }
  }
  return total;
}

RefScheduler::RefScheduler(const Instance& inst, RefOptions options)
    : inst_(&inst), options_(options), grand_(Coalition::grand(inst.num_orgs())) {
  const std::uint32_t k = inst.num_orgs();
  if (k == 0) throw std::invalid_argument("RefScheduler: empty instance");
  if (k > kMaxOrgs) {
    throw std::invalid_argument(
        "RefScheduler: too many organizations for the exponential reference "
        "algorithm (max 16)");
  }
  engines_.resize(std::size_t{1} << k);
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    engines_[mask] = std::make_unique<Engine>(inst, Coalition(mask));
  }
  weights_.reserve(k);
  for (std::uint32_t s = 1; s <= k; ++s) weights_.emplace_back(s);
}

std::vector<double> RefScheduler::contributions2_of(Coalition c) const {
  std::vector<double> phi2(inst_->num_orgs(), 0.0);
  const ShapleyWeights& w = weights_[c.size() - 1];
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty()) return;
    const double v_sub = static_cast<double>(engines_[sub.mask()]->value2());
    const double weight = w.weight(sub.size());
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (!sub.contains(u)) continue;
      const Coalition without = sub.without(u);
      const double v_without =
          without.is_empty()
              ? 0.0
              : static_cast<double>(engines_[without.mask()]->value2());
      phi2[u] += weight * (v_sub - v_without);
    }
  });
  return phi2;
}

double RefScheduler::generic_distance(Coalition c, OrgId u, Time t,
                                      const std::vector<double>& phi,
                                      const std::vector<double>& psi) const {
  const Engine& e = *engines_[c.mask()];
  const UtilityFunction& util = *options_.generic_utility;
  // Tentatively start u's front job at t and evaluate the utility delta one
  // step ahead (at t; for psi_sp and any non-clairvoyant utility the value
  // at t itself cannot change by starting a job at t).
  Schedule tentative = e.schedule();
  const std::uint32_t index = e.completed(u) + e.running(u);
  tentative.add(Placement{u, index, t, kNoMachine});
  const double delta =
      util.eval(*inst_, tentative, u, t + 1) -
      util.eval(*inst_, e.schedule(), u, t + 1);
  const double s = static_cast<double>(c.size());
  double dist = std::abs(phi[u] + delta / s - psi[u] - delta);
  for (OrgId v = 0; v < inst_->num_orgs(); ++v) {
    if (v == u || !c.contains(v)) continue;
    dist += std::abs(phi[v] + delta / s - psi[v]);
  }
  return dist;
}

OrgId RefScheduler::select_org(Coalition c, Time t) {
  Engine& e = *engines_[c.mask()];
  if (options_.generic_utility == nullptr) {
    // Specialized psi_sp rule (Fig. 3): argmax of phi - psi among waiting.
    const std::vector<double> phi2 = contributions2_of(c);
    OrgId best = kNoOrg;
    double best_deficit = 0.0;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (!c.contains(u) || e.waiting(u) == 0) continue;
      const double deficit = phi2[u] - static_cast<double>(e.psi2(u));
      if (best == kNoOrg || deficit > best_deficit) {
        best = u;
        best_deficit = deficit;
      }
    }
    return best;
  }
  // Generic Distance rule (Fig. 1).
  const UtilityFunction& util = *options_.generic_utility;
  std::vector<double> psi(inst_->num_orgs(), 0.0);
  std::vector<double> phi(inst_->num_orgs(), 0.0);
  // v(C', t) for the Shapley formula, from the generic utility.
  const ShapleyWeights& w = weights_[c.size() - 1];
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty()) return;
    double v_sub = 0.0;
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (sub.contains(u)) {
        v_sub += util.eval(*inst_, engines_[sub.mask()]->schedule(), u, t);
      }
    }
    const double weight = w.weight(sub.size());
    for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
      if (!sub.contains(u)) continue;
      const Coalition without = sub.without(u);
      double v_without = 0.0;
      if (!without.is_empty()) {
        for (OrgId x = 0; x < inst_->num_orgs(); ++x) {
          if (without.contains(x)) {
            v_without +=
                util.eval(*inst_, engines_[without.mask()]->schedule(), x, t);
          }
        }
      }
      phi[u] += weight * (v_sub - v_without);
    }
  });
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    if (c.contains(u)) {
      psi[u] = util.eval(*inst_, e.schedule(), u, t);
    }
  }
  OrgId best = kNoOrg;
  double best_dist = 0.0;
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    if (!c.contains(u) || e.waiting(u) == 0) continue;
    const double dist = generic_distance(c, u, t, phi, psi);
    if (best == kNoOrg || dist < best_dist) {
      best = u;
      best_dist = dist;
    }
  }
  return best;
}

void RefScheduler::process_coalition_at(Coalition c, Time t) {
  Engine& e = *engines_[c.mask()];
  e.advance_to(t);
  if (!e.needs_decision()) return;
  // Bring every subcoalition to t (their own events at times <= t have
  // already been processed by the global loop's (time, size) order, so this
  // is closed-form accrual only and their values v(C', t) become current).
  for_each_subset(c, [&](Coalition sub) {
    if (sub.is_empty() || sub == c) return;
    engines_[sub.mask()]->advance_to(t);
  });
  while (e.needs_decision()) {
    const OrgId u = select_org(c, t);
    if (u == kNoOrg) {
      throw std::logic_error("RefScheduler: no selectable organization");
    }
    e.start_front(u);
  }
}

void RefScheduler::run(Time horizon) {
  if (ran_) throw std::logic_error("RefScheduler::run called twice");
  ran_ = true;

  // Global event loop over all coalitions, ordered by (time, coalition
  // size, mask). A coalition's entry is re-armed with its next event after
  // each processing; entries never go stale because only processing a
  // coalition changes its own event stream.
  using Entry = std::tuple<Time, std::uint32_t, Coalition::Mask>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    const Time t = engines_[mask]->next_event();
    if (t != kTimeInfinity && t < horizon) {
      queue.emplace(t, Coalition(mask).size(), mask);
    }
  }
  while (!queue.empty()) {
    const auto [t, size, mask] = queue.top();
    queue.pop();
    (void)size;
    process_coalition_at(Coalition(mask), t);
    const Time next = engines_[mask]->next_event();
    if (next != kTimeInfinity && next < horizon) {
      queue.emplace(next, Coalition(mask).size(), mask);
    }
  }
  for (Coalition::Mask mask = 1; mask < engines_.size(); ++mask) {
    engines_[mask]->advance_to(horizon);
  }
}

std::vector<HalfUtil> RefScheduler::utilities2() const {
  std::vector<HalfUtil> out(inst_->num_orgs(), 0);
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    out[u] = grand_engine().psi2(u);
  }
  return out;
}

std::vector<double> RefScheduler::contributions() const {
  std::vector<double> phi2 = contributions2_of(grand_);
  for (double& p : phi2) p /= 2.0;
  return phi2;
}

}  // namespace fairsched
