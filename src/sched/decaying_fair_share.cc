#include "sched/decaying_fair_share.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace fairsched {

DecayingFairSharePolicy::DecayingFairSharePolicy(double half_life)
    : half_life_(half_life),
      decay_per_unit_(half_life > 0.0 ? std::exp2(-1.0 / half_life) : 1.0) {}

void DecayingFairSharePolicy::reset(const PolicyView& view) {
  last_time_ = view.now();
  usage_.assign(view.num_orgs(), 0.0);
  last_work_.assign(view.num_orgs(), 0);
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    last_work_[u] = view.work_done(u);
  }
}

void DecayingFairSharePolicy::advance(const PolicyView& view) {
  const Time now = view.now();
  const Time delta_t = now - last_time_;
  const double d = decay_per_unit_;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    const std::int64_t work = view.work_done(u);
    const double delta_w = static_cast<double>(work - last_work_[u]);
    last_work_[u] = work;
    if (delta_t <= 0) {
      usage_[u] += delta_w;  // no time passed; count at full weight
      continue;
    }
    const double dt = static_cast<double>(delta_t);
    const double decay_all = std::pow(d, dt);
    if (d >= 1.0) {
      usage_[u] += delta_w;
    } else {
      // Units assumed spread uniformly over the elapsed interval (exact
      // whenever the running set was constant between decision points):
      // usage <- usage * d^dt + (dw/dt) * d * (1 - d^dt) / (1 - d).
      usage_[u] = usage_[u] * decay_all +
                  delta_w / dt * d * (1.0 - decay_all) / (1.0 - d);
    }
  }
  last_time_ = now;
}

OrgId DecayingFairSharePolicy::select(const PolicyView& view) {
  // Decay is multiplicative per elapsed unit, so the closed-form update can
  // only run once per distinct timestamp anyway (d^(a+b) applied in one
  // step differs bitwise from d^a then d^b with intermediate rounding —
  // the per-decision update schedule is pinned by the published numbers).
  // Skipping the dt == 0 call is exact: no time passed means no work
  // accrued, so every usage would update by += 0.0, a bitwise no-op for
  // the non-negative usages this policy maintains. That makes repeat
  // decisions at one timestamp O(1) here; the selection scan below stays
  // O(num_orgs) because the decayed usages have no incremental form.
  if (view.now() != last_time_) advance(view);
  OrgId best = kNoOrg;
  double best_ratio = std::numeric_limits<double>::infinity();
  bool best_zero_share = true;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) == 0) continue;
    const double share = view.share(u);
    const bool zero_share = share <= 0.0;
    const double ratio = zero_share ? 0.0 : usage_[u] / share;
    if (best == kNoOrg || (best_zero_share && !zero_share) ||
        (best_zero_share == zero_share && ratio < best_ratio)) {
      best = u;
      best_ratio = ratio;
      best_zero_share = zero_share;
    }
  }
  if (best == kNoOrg) {
    throw std::logic_error("DecayingFairSharePolicy::select: no waiting job");
  }
  return best;
}

}  // namespace fairsched
