#pragma once

// First-come-first-served across organizations: starts the waiting job with
// the earliest release time (ties: lowest organization id). This is the
// "arbitrary greedy algorithm" the library uses wherever the paper only
// requires greediness — notably to evaluate the value of RAND's sampled
// coalitions (justified for unit jobs by Proposition 5.4).

#include "sim/policy.h"

namespace fairsched {

class FcfsPolicy final : public Policy {
 public:
  OrgId select(const PolicyView& view) override;
};

}  // namespace fairsched
