#pragma once

// First-come-first-served across organizations: starts the waiting job with
// the earliest release time (ties: lowest organization id). This is the
// "arbitrary greedy algorithm" the library uses wherever the paper only
// requires greediness — notably to evaluate the value of RAND's sampled
// coalitions (justified for unit jobs by Proposition 5.4).
//
// Incremental: each waiting organization's key is its front job's release
// time; releases and starts touch one key, so an attached run answers
// select() as an O(log n) argmin (keys are time-invariant — no repair).

#include "sched/org_index.h"
#include "sim/policy.h"

namespace fairsched {

class FcfsPolicy final : public IncrementalPolicy {
 public:
  OrgId select(const PolicyView& view) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;

 protected:
  void rebuild(const PolicyView& view) override;

 private:
  KeyedArgmin<Time> index_;
};

}  // namespace fairsched
