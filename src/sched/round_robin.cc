#include "sched/round_robin.h"

#include <stdexcept>

namespace fairsched {

void RoundRobinPolicy::reset(const PolicyView& /*view*/) { cursor_ = 0; }

OrgId RoundRobinPolicy::select(const PolicyView& view) {
  const std::uint32_t k = view.num_orgs();
  for (std::uint32_t step = 0; step < k; ++step) {
    const OrgId u = (cursor_ + step) % k;
    if (view.waiting(u) > 0) {
      cursor_ = (u + 1) % k;
      return u;
    }
  }
  throw std::logic_error("RoundRobinPolicy::select: no waiting job");
}

}  // namespace fairsched
