#include "sched/round_robin.h"

#include <stdexcept>

namespace fairsched {

void RoundRobinPolicy::reset(const PolicyView& view) {
  cursor_ = 0;
  IncrementalPolicy::reset(view);
}

OrgId RoundRobinPolicy::select(const PolicyView& view) {
  ensure_synced(view);
  if (waiting_.size() == 0) {
    throw std::logic_error("RoundRobinPolicy::select: no waiting job");
  }
  const std::uint32_t at_or_after = waiting_.count_below(cursor_);
  // First member at or after the cursor; wrap to the smallest member when
  // every waiting organization precedes the cursor.
  const OrgId u = at_or_after < waiting_.size() ? waiting_.kth(at_or_after)
                                                : waiting_.kth(0);
  cursor_ = (u + 1) % view.num_orgs();
  return u;
}

void RoundRobinPolicy::on_release(const PolicyView& view, OrgId org) {
  if (!track(view)) return;
  waiting_.insert(org);
}

void RoundRobinPolicy::on_complete(const PolicyView& view, OrgId /*org*/,
                                   MachineId /*machine*/) {
  track(view);  // completions do not change the waiting set
}

void RoundRobinPolicy::on_start(const PolicyView& view, OrgId org,
                                std::uint32_t /*index*/,
                                MachineId /*machine*/) {
  if (!track(view)) return;
  if (view.waiting(org) == 0) waiting_.erase(org);
}

void RoundRobinPolicy::rebuild(const PolicyView& view) {
  waiting_.init(view.num_orgs());
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) > 0) waiting_.insert(u);
  }
}

}  // namespace fairsched
