#pragma once

// Fair share with exponential decay.
//
// Production fair-share schedulers (Kay & Lauder's original, Maui/Moab,
// SLURM's multifactor plugin) do not balance *lifetime* CPU usage: past
// usage is decayed with a configurable half-life so that the scheduler
// reacts to recent behaviour. The paper's FAIRSHARE baseline uses full
// history; this variant lets the bench suite measure what the half-life
// does to Shapley-fairness (an ablation between FAIRSHARE, which never
// forgets, and CURRFAIRSHARE, which only sees the running set):
//
//   usage_u(t) = sum over completed unit parts of u's jobs executed in slot
//                i of 2^-((t - i) / half_life)
//
// The decayed usage is maintained incrementally: between events, if w jobs
// of u run over [t1, t2), usage_u(t2) = usage_u(t1) * d^(t2-t1) +
// w * (d^0 + d^1 + ... + d^(t2-t1-1)) with d = 2^-(1/half_life) — a
// geometric series, evaluated in closed form, mirroring the engine's exact
// psi accrual.
//
// Selection: minimum of decayed usage / share over waiting organizations.

#include <vector>

#include "sim/policy.h"

namespace fairsched {

class DecayingFairSharePolicy final : public Policy {
 public:
  // half_life <= 0 disables decay (degenerates to plain FAIRSHARE).
  explicit DecayingFairSharePolicy(double half_life);

  void reset(const PolicyView& view) override;
  OrgId select(const PolicyView& view) override;

 private:
  void advance(const PolicyView& view);

  double half_life_;
  double decay_per_unit_;  // d = 2^-(1/half_life); 1.0 when disabled
  Time last_time_ = 0;
  std::vector<double> usage_;
  std::vector<std::int64_t> last_work_;
};

}  // namespace fairsched
