#pragma once

// The unified runnable seam of the open policy API.
//
// An Algorithm is anything that can be executed on an instance up to a
// horizon and report the quantities the experiments need (Section 7):
// the schedule, the strategy-proof utility vector at the horizon, and the
// completed work. Both shapes of scheduler in the paper fit behind the one
// run() method:
//
//   * Policy-shaped schedulers (fair share, round robin, ...) — a Policy
//     driven step-by-step by sim/engine.h (PolicyAlgorithm below);
//   * whole-schedule algorithms (REF's exact exponential reference, RAND's
//     sampled approximation) — adapters over sched/ref.h / sched/rand_fair.h
//     that produce the entire schedule themselves.
//
// Instances are resolved from a PolicySpec by the policy registry
// (exp/policy_registry.h); nothing above that layer switches on a closed
// algorithm enum. Every implementation must be a deterministic function of
// (instance, horizon, seed): the sweep engine's caches and shard merges
// rely on replayed runs being bit-identical.

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "sim/engine.h"
#include "sim/policy.h"

namespace fairsched {

struct RunResult {
  Schedule schedule;
  std::vector<HalfUtil> utilities2;  // 2*psi_sp per organization at horizon
  std::int64_t work_done = 0;        // completed unit parts at horizon
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  // Runs on `inst` until `horizon`. `seed` feeds the algorithm's internal
  // randomness (RAND's permutations, random machine picks); deterministic
  // algorithms ignore it.
  virtual RunResult run(const Instance& inst, Time horizon,
                        std::uint64_t seed) const = 0;
};

// Builds a fresh Policy for one run; `seed` feeds randomized policies.
using PolicyMaker =
    std::function<std::unique_ptr<Policy>(std::uint64_t seed)>;

// A Policy-shaped scheduler: drives `maker`'s policy through the engine.
// `options` configures the engine (e.g. DirectContr's random machine pick,
// Fig. 9); options.seed is overwritten with the run seed.
class PolicyAlgorithm final : public Algorithm {
 public:
  explicit PolicyAlgorithm(PolicyMaker maker, EngineOptions options = {})
      : maker_(std::move(maker)), options_(options) {}

  RunResult run(const Instance& inst, Time horizon,
                std::uint64_t seed) const override;

 private:
  PolicyMaker maker_;
  EngineOptions options_;
};

// REF: the exact exponential fair reference (Fig. 3).
class RefAlgorithm final : public Algorithm {
 public:
  RunResult run(const Instance& inst, Time horizon,
                std::uint64_t seed) const override;
};

// RAND: the randomized Shapley approximation (Fig. 6 / Thm 5.6).
class RandAlgorithm final : public Algorithm {
 public:
  explicit RandAlgorithm(std::size_t samples) : samples_(samples) {}
  RunResult run(const Instance& inst, Time horizon,
                std::uint64_t seed) const override;

 private:
  std::size_t samples_;
};

// --- Policy compositions (config-defined policies build on these) -----------

// Runs `before` until view.now() >= switch_at, then `after`. Both
// sub-policies observe every notification (reset, starts, releases,
// completions, clock advances) so their internal accounting — including
// any incremental mirror — tracks the whole run.
class SwitchPolicy final : public Policy {
 public:
  SwitchPolicy(std::unique_ptr<Policy> before, std::unique_ptr<Policy> after,
               Time switch_at)
      : before_(std::move(before)), after_(std::move(after)),
        switch_at_(switch_at) {}

  void reset(const PolicyView& view) override;
  OrgId select(const PolicyView& view) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_advance(const PolicyView& view, Time dt) override;

 private:
  std::unique_ptr<Policy> before_;
  std::unique_ptr<Policy> after_;
  Time switch_at_;
};

// Weighted random mixture: each select() delegates to one sub-policy drawn
// with probability proportional to its weight (deterministic given the
// seed). All sub-policies observe every notification.
class MixturePolicy final : public Policy {
 public:
  struct Component {
    std::unique_ptr<Policy> policy;
    double weight = 1.0;
  };
  MixturePolicy(std::vector<Component> components, std::uint64_t seed);

  void reset(const PolicyView& view) override;
  OrgId select(const PolicyView& view) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_advance(const PolicyView& view, Time dt) override;

 private:
  std::vector<Component> components_;
  double total_weight_ = 0.0;
  std::uint64_t state_;  // splitmix-style stream, advanced per decision
};

}  // namespace fairsched
