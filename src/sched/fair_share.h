#pragma once

// The fair-share family (Section 7.1).
//
// FAIRSHARE (Kay & Lauder 1988): each organization has a target share (here:
// its fraction of contributed machines, as in the paper's experiments).
// Whenever a processor frees, organizations are ordered by the ratio
// (CPU time already allocated to the organization's jobs) / share, and a job
// of the lowest-ratio organization starts.
//
// UTFAIRSHARE: same allocation mechanism, but balances the strategy-proof
// utilities psi_sp instead of allocated CPU time.
//
// CURRFAIRSHARE: history-less variant — balances the number of *currently
// running* jobs against shares.
//
// Tie-breaking is by organization id for determinism. Organizations with a
// zero share are served only when no positive-share organization waits
// (their ratio is treated as +infinity).
//
// Incremental: the minimized key is the pair (zero-share class, ratio) —
// lexicographic comparison with ties to the lower id reproduces the scan's
// class-then-ratio-then-first-wins rule, and the ratio is computed by the
// very same double expression, so scan and tree agree bit-for-bit. Keys
// whose metric accrues with wall time (FAIRSHARE while jobs run,
// UTFAIRSHARE once any work exists) carry a drift flag and are refreshed
// once per distinct decision timestamp; CURRFAIRSHARE's metric only changes
// at events, so it never repairs.

#include <utility>
#include <vector>

#include "sched/org_index.h"
#include "sim/policy.h"

namespace fairsched {

// Shared mirror for the min-ratio selection rule. Subclasses provide the
// balanced metric and the time-drift predicate.
class RatioSharePolicyBase : public IncrementalPolicy {
 public:
  OrgId select(const PolicyView& view) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;

 protected:
  void rebuild(const PolicyView& view) override;

  // The balanced quantity, exactly as the historical scan computed it.
  virtual double metric(const PolicyView& view, OrgId u) const = 0;
  // Whether u's metric changes as time passes (given current state).
  virtual bool drifts(const PolicyView& view, OrgId u) const = 0;

 private:
  // (zero-share class, metric/share): positive-share organizations first,
  // then smaller ratio, ties to the lower id via the argmin tree.
  using Key = std::pair<int, double>;
  Key key_of(const PolicyView& view, OrgId u) const {
    const double share = view.share(u);
    if (share <= 0.0) return Key(1, 0.0);
    return Key(0, metric(view, u) / share);
  }
  void repair(const PolicyView& view);

  KeyedArgmin<Key> index_;
  std::vector<char> drifting_;
  Time repaired_at_ = 0;
};

class FairSharePolicy final : public RatioSharePolicyBase {
 protected:
  double metric(const PolicyView& view, OrgId u) const override;
  bool drifts(const PolicyView& view, OrgId u) const override;
};

class UtFairSharePolicy final : public RatioSharePolicyBase {
 protected:
  double metric(const PolicyView& view, OrgId u) const override;
  bool drifts(const PolicyView& view, OrgId u) const override;
};

class CurrFairSharePolicy final : public RatioSharePolicyBase {
 protected:
  double metric(const PolicyView& view, OrgId u) const override;
  bool drifts(const PolicyView& view, OrgId u) const override;
};

}  // namespace fairsched
