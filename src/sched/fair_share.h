#pragma once

// The fair-share family (Section 7.1).
//
// FAIRSHARE (Kay & Lauder 1988): each organization has a target share (here:
// its fraction of contributed machines, as in the paper's experiments).
// Whenever a processor frees, organizations are ordered by the ratio
// (CPU time already allocated to the organization's jobs) / share, and a job
// of the lowest-ratio organization starts.
//
// UTFAIRSHARE: same allocation mechanism, but balances the strategy-proof
// utilities psi_sp instead of allocated CPU time.
//
// CURRFAIRSHARE: history-less variant — balances the number of *currently
// running* jobs against shares.
//
// Tie-breaking is by organization id for determinism. Organizations with a
// zero share are served only when no positive-share organization waits
// (their ratio is treated as +infinity).

#include "sim/policy.h"

namespace fairsched {

class FairSharePolicy final : public Policy {
 public:
  OrgId select(const PolicyView& view) override;
};

class UtFairSharePolicy final : public Policy {
 public:
  OrgId select(const PolicyView& view) override;
};

class CurrFairSharePolicy final : public Policy {
 public:
  OrgId select(const PolicyView& view) override;
};

}  // namespace fairsched
