#pragma once

// PolicySpec: the open, self-describing identity of a scheduling algorithm.
//
// A spec is pure data — a registered base name plus a sorted map of typed
// parameter values — with a single canonical string form that the whole
// stack uses uniformly: display names and CSV/JSON policy columns, sweep
// plan fingerprints, and workload/baseline cache keys (exp/sweep_plan.h,
// exp/workload_cache.h). Two specs compare equal exactly when their
// canonical strings are equal, so equality implies identical cache keys
// and fingerprints.
//
// The grammar and the parameter declarations (types, ranges, defaults)
// live in exp/policy_registry.h; this header only defines the value type
// so the sched/ layer can run a spec without knowing how it was named.

#include <cstdint>
#include <map>
#include <string>

namespace fairsched {

// One typed parameter value. Integers and reals keep distinct identities
// so a canonical form never conflates "15" with "15.0" and an integral
// parameter can reject fractional input instead of truncating it.
struct PolicyParam {
  enum class Type { kInt, kReal };

  Type type = Type::kReal;
  std::int64_t int_value = 0;
  double real_value = 0.0;

  static PolicyParam of_int(std::int64_t v);
  static PolicyParam of_real(double v);

  // The numeric value regardless of type (axis binding works in doubles).
  double as_double() const;

  // Canonical text: integers in plain decimal; reals in the shortest
  // decimal form that strtod round-trips bit-exactly (integral reals
  // print without a decimal point, e.g. 2000.0 -> "2000", so legacy
  // suffix names like "decayfairshare2000" are stable).
  std::string to_string() const;

  friend bool operator==(const PolicyParam&, const PolicyParam&) = default;
};

struct PolicySpec {
  // Registered base name, lower-case (e.g. "rand", "decayfairshare", or a
  // config-defined name).
  std::string base;
  // Every declared parameter of the base, defaults filled in — the map is
  // always complete, so map equality is spec equality.
  std::map<std::string, PolicyParam> params;

  // Registry-independent debug/display form: base, plus "(k=v, ...)" when
  // any parameters are present. The *canonical* user-facing name (which
  // prints legacy suffix forms like "rand15") additionally needs the
  // registry's declarations: see PolicyRegistry::canonical_name.
  std::string to_string() const;

  friend bool operator==(const PolicySpec&, const PolicySpec&) = default;
};

}  // namespace fairsched
