#include "sched/algorithm.h"

#include <stdexcept>

#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "util/rng.h"

namespace fairsched {

RunResult PolicyAlgorithm::run(const Instance& inst, Time horizon,
                               std::uint64_t seed) const {
  EngineOptions options = options_;
  options.seed = seed;
  Engine engine(inst, options);
  std::unique_ptr<Policy> policy = maker_(seed);
  engine.run(*policy, horizon);
  RunResult result;
  result.schedule = engine.schedule();
  result.utilities2.resize(inst.num_orgs());
  for (OrgId u = 0; u < inst.num_orgs(); ++u) {
    result.utilities2[u] = engine.psi2(u);
  }
  result.work_done = engine.total_work_done();
  return result;
}

RunResult RefAlgorithm::run(const Instance& inst, Time horizon,
                            std::uint64_t /*seed*/) const {
  RefScheduler ref(inst);
  ref.run(horizon);
  RunResult result;
  result.schedule = ref.schedule();
  result.utilities2 = ref.utilities2();
  result.work_done = ref.reference_work();
  return result;
}

RunResult RandAlgorithm::run(const Instance& inst, Time horizon,
                             std::uint64_t seed) const {
  RandScheduler rand(inst, RandOptions{samples_, seed});
  rand.run(horizon);
  RunResult result;
  result.schedule = rand.schedule();
  result.utilities2 = rand.utilities2();
  result.work_done = rand.work_done();
  return result;
}

void SwitchPolicy::reset(const PolicyView& view) {
  before_->reset(view);
  after_->reset(view);
}

OrgId SwitchPolicy::select(const PolicyView& view) {
  return view.now() < switch_at_ ? before_->select(view)
                                 : after_->select(view);
}

void SwitchPolicy::on_start(const PolicyView& view, OrgId org,
                            std::uint32_t index, MachineId machine) {
  before_->on_start(view, org, index, machine);
  after_->on_start(view, org, index, machine);
}

void SwitchPolicy::on_release(const PolicyView& view, OrgId org) {
  before_->on_release(view, org);
  after_->on_release(view, org);
}

void SwitchPolicy::on_complete(const PolicyView& view, OrgId org,
                               MachineId machine) {
  before_->on_complete(view, org, machine);
  after_->on_complete(view, org, machine);
}

void SwitchPolicy::on_advance(const PolicyView& view, Time dt) {
  before_->on_advance(view, dt);
  after_->on_advance(view, dt);
}

MixturePolicy::MixturePolicy(std::vector<Component> components,
                             std::uint64_t seed)
    : components_(std::move(components)), state_(seed) {
  if (components_.empty()) {
    throw std::invalid_argument("MixturePolicy: no components");
  }
  for (const Component& component : components_) {
    if (!(component.weight > 0)) {
      throw std::invalid_argument(
          "MixturePolicy: component weights must be positive");
    }
    total_weight_ += component.weight;
  }
}

void MixturePolicy::reset(const PolicyView& view) {
  for (Component& component : components_) component.policy->reset(view);
}

OrgId MixturePolicy::select(const PolicyView& view) {
  // One splitmix64 draw per decision: cheap, stateless across components,
  // and deterministic for a fixed (seed, decision index) stream.
  const double u = static_cast<double>(splitmix64(state_) >> 11) *
                   0x1.0p-53 * total_weight_;
  double cumulative = 0.0;
  for (Component& component : components_) {
    cumulative += component.weight;
    if (u < cumulative) return component.policy->select(view);
  }
  return components_.back().policy->select(view);
}

void MixturePolicy::on_start(const PolicyView& view, OrgId org,
                             std::uint32_t index, MachineId machine) {
  for (Component& component : components_) {
    component.policy->on_start(view, org, index, machine);
  }
}

void MixturePolicy::on_release(const PolicyView& view, OrgId org) {
  for (Component& component : components_) {
    component.policy->on_release(view, org);
  }
}

void MixturePolicy::on_complete(const PolicyView& view, OrgId org,
                                MachineId machine) {
  for (Component& component : components_) {
    component.policy->on_complete(view, org, machine);
  }
}

void MixturePolicy::on_advance(const PolicyView& view, Time dt) {
  for (Component& component : components_) {
    component.policy->on_advance(view, dt);
  }
}

}  // namespace fairsched
