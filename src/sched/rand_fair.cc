#include "sched/rand_fair.h"

#include <stdexcept>

#include "sched/fcfs.h"
#include "shapley/shapley.h"
#include "util/rng.h"

namespace fairsched {

std::size_t rand_theorem_samples(std::uint32_t k, double epsilon,
                                 double lambda) {
  return rand_sample_bound(k, epsilon, lambda);
}

RandScheduler::RandScheduler(const Instance& inst, RandOptions options)
    : inst_(&inst), options_(options) {
  const std::uint32_t k = inst.num_orgs();
  if (k == 0) throw std::invalid_argument("RandScheduler: empty instance");
  if (k > Coalition::kMaxOrgs) {
    throw std::invalid_argument("RandScheduler: too many organizations");
  }
  if (options_.samples == 0) {
    throw std::invalid_argument("RandScheduler: need at least one sample");
  }
  grand_ = std::make_unique<Engine>(inst, Coalition::grand(k));

  // Prepare(C): N random orderings; each prefix pair (C', C' | u) is
  // recorded for u. Distinct coalitions share one simplified engine.
  Rng rng(options_.seed);
  prefix_masks_.resize(k);
  auto ensure_engine = [&](Coalition::Mask mask) {
    if (mask == 0) return;  // v(empty) = 0, no engine needed
    auto& slot = sampled_[mask];
    if (!slot) slot = std::make_unique<Engine>(inst, Coalition(mask));
  };
  for (std::size_t i = 0; i < options_.samples; ++i) {
    const std::vector<std::uint32_t> order = rng.permutation(k);
    Coalition::Mask mask = 0;
    for (OrgId u : order) {
      prefix_masks_[u].push_back(mask);
      ensure_engine(mask);
      mask |= Coalition::Mask{1} << u;
      ensure_engine(mask);
    }
  }
}

void RandScheduler::advance_sampled(Engine& engine, Time t) {
  // Attach the greedy FCFS policy for the duration of this catch-up so its
  // incremental mirror rides the push notifications instead of rebuilding
  // per decision (it would still be exact unattached — just O(n) slower).
  FcfsPolicy fcfs;
  PolicyView view(engine);
  engine.attach(&fcfs);
  fcfs.reset(view);
  for (;;) {
    // Decision-granularity wake-ups (see Engine::next_decision_time);
    // skipped releases are batch-processed in identical order.
    const Time te = engine.next_decision_time();
    if (te == kTimeInfinity || te > t) break;
    engine.advance_to(te);
    while (engine.needs_decision()) {
      const OrgId u = fcfs.select(view);
      // started-so-far == running + completed; the driver that decides also
      // delivers on_start (start_front does not synthesize it).
      const std::uint32_t index = engine.running(u) + engine.completed(u);
      const MachineId m = engine.start_front(u);
      fcfs.on_start(view, u, index, m);
    }
  }
  engine.advance_to(t);
  engine.attach(nullptr);
}

std::vector<double> RandScheduler::contributions2() const {
  std::vector<double> phi2(inst_->num_orgs(), 0.0);
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    double total = 0.0;
    for (Coalition::Mask before : prefix_masks_[u]) {
      const Coalition::Mask with_u = before | (Coalition::Mask{1} << u);
      const double v_before =
          before == 0
              ? 0.0
              : static_cast<double>(sampled_.at(before)->value2());
      const double v_with =
          static_cast<double>(sampled_.at(with_u)->value2());
      total += v_with - v_before;
    }
    phi2[u] = total / static_cast<double>(options_.samples);
  }
  return phi2;
}

void RandScheduler::run(Time horizon) {
  if (ran_) throw std::logic_error("RandScheduler::run called twice");
  ran_ = true;
  for (;;) {
    const Time t = grand_->next_decision_time();
    if (t == kTimeInfinity || t >= horizon) break;
    grand_->advance_to(t);
    if (!grand_->needs_decision()) continue;
    // Bring every sampled coalition's simplified schedule to t so that the
    // contribution estimates are current.
    for (auto& [mask, engine] : sampled_) {
      advance_sampled(*engine, t);
    }
    const std::vector<double> phi2 = contributions2();
    while (grand_->needs_decision()) {
      OrgId best = kNoOrg;
      double best_deficit = 0.0;
      for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
        if (grand_->waiting(u) == 0) continue;
        const double deficit =
            phi2[u] - static_cast<double>(grand_->psi2(u));
        if (best == kNoOrg || deficit > best_deficit) {
          best = u;
          best_deficit = deficit;
        }
      }
      grand_->start_front(best);
    }
  }
  grand_->advance_to(horizon);
  for (auto& [mask, engine] : sampled_) {
    advance_sampled(*engine, horizon);
  }
}

std::vector<HalfUtil> RandScheduler::utilities2() const {
  std::vector<HalfUtil> out(inst_->num_orgs(), 0);
  for (OrgId u = 0; u < inst_->num_orgs(); ++u) {
    out[u] = grand_->psi2(u);
  }
  return out;
}

std::vector<double> RandScheduler::contributions() const {
  std::vector<double> phi2 = contributions2();
  for (double& p : phi2) p /= 2.0;
  return phi2;
}

}  // namespace fairsched
