#include "sched/policy_spec.h"

#include <cstdio>
#include <cstdlib>

namespace fairsched {

namespace {

// Shortest decimal form that strtod round-trips to exactly `v`. Integral
// values below 2^53 print as plain integers so legacy suffix names
// ("decayfairshare2000") and axis labels stay free of ".0" / exponents.
std::string shortest_exact(double v) {
  // Magnitude check first: the round-trip cast below is UB outside the
  // int64 range (and for non-finite values).
  if (v >= -9.007199254740992e15 && v <= 9.007199254740992e15 &&
      v == static_cast<double>(static_cast<std::int64_t>(v))) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

PolicyParam PolicyParam::of_int(std::int64_t v) {
  PolicyParam param;
  param.type = Type::kInt;
  param.int_value = v;
  return param;
}

PolicyParam PolicyParam::of_real(double v) {
  PolicyParam param;
  param.type = Type::kReal;
  param.real_value = v;
  return param;
}

double PolicyParam::as_double() const {
  return type == Type::kInt ? static_cast<double>(int_value) : real_value;
}

std::string PolicyParam::to_string() const {
  return type == Type::kInt ? std::to_string(int_value)
                            : shortest_exact(real_value);
}

std::string PolicySpec::to_string() const {
  if (params.empty()) return base;
  std::string out = base + "(";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + value.to_string();
  }
  out += ")";
  return out;
}

}  // namespace fairsched
