#include "sched/fair_share.h"

#include <limits>
#include <stdexcept>

namespace fairsched {

namespace {

// Shared selection skeleton: pick the waiting organization minimizing
// metric(u) / share(u); zero-share organizations sort last.
template <typename MetricFn>
OrgId select_min_ratio(const PolicyView& view, MetricFn&& metric) {
  OrgId best = kNoOrg;
  double best_ratio = std::numeric_limits<double>::infinity();
  bool best_zero_share = true;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) == 0) continue;
    const double share = view.share(u);
    const bool zero_share = share <= 0.0;
    const double ratio = zero_share ? 0.0 : metric(u) / share;
    // Positive-share candidates beat zero-share ones; within a class,
    // smaller ratio wins; ties go to the lower id (strict < keeps it).
    if (best == kNoOrg || (best_zero_share && !zero_share) ||
        (best_zero_share == zero_share && ratio < best_ratio)) {
      best = u;
      best_ratio = ratio;
      best_zero_share = zero_share;
    }
  }
  if (best == kNoOrg) {
    throw std::logic_error("fair share select: no waiting job");
  }
  return best;
}

}  // namespace

OrgId FairSharePolicy::select(const PolicyView& view) {
  return select_min_ratio(view, [&](OrgId u) {
    // CPU time already allocated to u's jobs = completed unit parts
    // (sequential jobs execute at unit rate).
    return static_cast<double>(view.work_done(u));
  });
}

OrgId UtFairSharePolicy::select(const PolicyView& view) {
  return select_min_ratio(view, [&](OrgId u) {
    return static_cast<double>(view.psi2(u)) / 2.0;
  });
}

OrgId CurrFairSharePolicy::select(const PolicyView& view) {
  return select_min_ratio(view, [&](OrgId u) {
    return static_cast<double>(view.running(u));
  });
}

}  // namespace fairsched
