#include "sched/fair_share.h"

#include <stdexcept>

namespace fairsched {

OrgId RatioSharePolicyBase::select(const PolicyView& view) {
  ensure_synced(view);
  repair(view);
  const OrgId best = index_.argmin();
  if (best == KeyedArgmin<Key>::kNone) {
    throw std::logic_error("fair share select: no waiting job");
  }
  return best;
}

void RatioSharePolicyBase::repair(const PolicyView& view) {
  if (view.now() == repaired_at_) return;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (drifting_[u] && view.waiting(u) > 0) index_.set(u, key_of(view, u));
  }
  repaired_at_ = view.now();
}

void RatioSharePolicyBase::on_release(const PolicyView& view, OrgId org) {
  if (!track(view)) return;
  index_.set(org, key_of(view, org));
}

void RatioSharePolicyBase::on_complete(const PolicyView& view, OrgId org,
                                       MachineId /*machine*/) {
  if (!track(view)) return;
  // Refresh before the drift flag can drop (e.g. FAIRSHARE when the last
  // running job completes: the work accrued up to now must be folded into
  // the key while the organization still counts as drifting).
  if (view.waiting(org) > 0) index_.set(org, key_of(view, org));
  drifting_[org] = drifts(view, org);
}

void RatioSharePolicyBase::on_start(const PolicyView& view, OrgId org,
                                    std::uint32_t /*index*/,
                                    MachineId /*machine*/) {
  if (!track(view)) return;
  drifting_[org] = drifts(view, org);
  if (view.waiting(org) > 0) {
    index_.set(org, key_of(view, org));
  } else {
    index_.clear(org);
  }
}

void RatioSharePolicyBase::rebuild(const PolicyView& view) {
  index_.init(view.num_orgs());
  drifting_.assign(view.num_orgs(), 0);
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    drifting_[u] = drifts(view, u);
    if (view.waiting(u) > 0) index_.set(u, key_of(view, u));
  }
  repaired_at_ = view.now();
}

double FairSharePolicy::metric(const PolicyView& view, OrgId u) const {
  // CPU time already allocated to u's jobs = completed unit parts
  // (sequential jobs execute at unit rate).
  return static_cast<double>(view.work_done(u));
}

bool FairSharePolicy::drifts(const PolicyView& view, OrgId u) const {
  return view.running(u) > 0;
}

double UtFairSharePolicy::metric(const PolicyView& view, OrgId u) const {
  return static_cast<double>(view.psi2(u)) / 2.0;
}

bool UtFairSharePolicy::drifts(const PolicyView& view, OrgId u) const {
  // psi accrues while jobs run and, through the work * dt term of the
  // closed form, whenever any work history exists.
  return view.running(u) > 0 || view.work_done(u) > 0;
}

double CurrFairSharePolicy::metric(const PolicyView& view, OrgId u) const {
  return static_cast<double>(view.running(u));
}

bool CurrFairSharePolicy::drifts(const PolicyView& /*view*/,
                                 OrgId /*u*/) const {
  return false;  // the running count only changes at events
}

}  // namespace fairsched
