#include "sched/random_policy.h"

#include <stdexcept>
#include <vector>

namespace fairsched {

OrgId RandomPolicy::select(const PolicyView& view) {
  std::vector<OrgId> candidates;
  candidates.reserve(view.num_orgs());
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) > 0) candidates.push_back(u);
  }
  if (candidates.empty()) {
    throw std::logic_error("RandomPolicy::select: no waiting job");
  }
  return candidates[rng_.uniform_u64(candidates.size())];
}

}  // namespace fairsched
