#include "sched/random_policy.h"

#include <stdexcept>

namespace fairsched {

OrgId RandomPolicy::select(const PolicyView& view) {
  ensure_synced(view);
  if (waiting_.size() == 0) {
    throw std::logic_error("RandomPolicy::select: no waiting job");
  }
  return waiting_.kth(
      static_cast<std::uint32_t>(rng_.uniform_u64(waiting_.size())));
}

void RandomPolicy::on_release(const PolicyView& view, OrgId org) {
  if (!track(view)) return;
  waiting_.insert(org);
}

void RandomPolicy::on_complete(const PolicyView& view, OrgId /*org*/,
                               MachineId /*machine*/) {
  track(view);  // completions do not change the waiting set
}

void RandomPolicy::on_start(const PolicyView& view, OrgId org,
                            std::uint32_t /*index*/, MachineId /*machine*/) {
  if (!track(view)) return;
  if (view.waiting(org) == 0) waiting_.erase(org);
}

void RandomPolicy::rebuild(const PolicyView& view) {
  waiting_.init(view.num_orgs());
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) > 0) waiting_.insert(u);
  }
}

}  // namespace fairsched
