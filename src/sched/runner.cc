#include "sched/runner.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "sched/decaying_fair_share.h"
#include "sched/direct_contr.h"
#include "sched/fair_share.h"
#include "sched/random_policy.h"
#include "sched/fcfs.h"
#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "sched/round_robin.h"
#include "sim/engine.h"

namespace fairsched {

std::string AlgorithmSpec::display_name() const {
  switch (id) {
    case AlgorithmId::kRef:
      return "Ref";
    case AlgorithmId::kRand:
      return "Rand (N=" + std::to_string(rand_samples) + ")";
    case AlgorithmId::kDirectContr:
      return "DirectContr";
    case AlgorithmId::kRoundRobin:
      return "RoundRobin";
    case AlgorithmId::kFairShare:
      return "FairShare";
    case AlgorithmId::kUtFairShare:
      return "UtFairShare";
    case AlgorithmId::kCurrFairShare:
      return "CurrFairShare";
    case AlgorithmId::kDecayFairShare: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "DecayFairShare (h=%g)",
                    decay_half_life);
      return buf;
    }
    case AlgorithmId::kRandom:
      return "Random";
    case AlgorithmId::kFcfs:
      return "Fcfs";
  }
  return "?";
}

AlgorithmSpec parse_algorithm(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  AlgorithmSpec spec;
  if (lower == "ref") {
    spec.id = AlgorithmId::kRef;
  } else if (lower == "random") {
    spec.id = AlgorithmId::kRandom;
  } else if (lower.rfind("rand", 0) == 0) {
    spec.id = AlgorithmId::kRand;
    const std::string suffix = lower.substr(4);
    if (!suffix.empty()) {
      spec.rand_samples = static_cast<std::size_t>(std::stoul(suffix));
      if (spec.rand_samples == 0) {
        throw std::invalid_argument("rand: sample count must be positive");
      }
    }
  } else if (lower == "directcontr") {
    spec.id = AlgorithmId::kDirectContr;
  } else if (lower == "roundrobin") {
    spec.id = AlgorithmId::kRoundRobin;
  } else if (lower == "fairshare") {
    spec.id = AlgorithmId::kFairShare;
  } else if (lower == "utfairshare") {
    spec.id = AlgorithmId::kUtFairShare;
  } else if (lower == "currfairshare") {
    spec.id = AlgorithmId::kCurrFairShare;
  } else if (lower.rfind("decayfairshare", 0) == 0) {
    spec.id = AlgorithmId::kDecayFairShare;
    const std::string suffix = lower.substr(14);
    if (!suffix.empty()) {
      spec.decay_half_life = std::stod(suffix);
      if (spec.decay_half_life <= 0.0) {
        throw std::invalid_argument(
            "decayfairshare: half-life must be positive");
      }
    }
  } else if (lower == "fcfs") {
    spec.id = AlgorithmId::kFcfs;
  } else {
    throw std::invalid_argument("unknown algorithm: " + name);
  }
  return spec;
}

std::unique_ptr<Policy> make_policy(AlgorithmId id, std::uint64_t seed) {
  AlgorithmSpec spec;
  spec.id = id;
  return make_policy(spec, seed);
}

std::unique_ptr<Policy> make_policy(const AlgorithmSpec& spec,
                                    std::uint64_t seed) {
  switch (spec.id) {
    case AlgorithmId::kDirectContr:
      return std::make_unique<DirectContrPolicy>();
    case AlgorithmId::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case AlgorithmId::kFairShare:
      return std::make_unique<FairSharePolicy>();
    case AlgorithmId::kUtFairShare:
      return std::make_unique<UtFairSharePolicy>();
    case AlgorithmId::kCurrFairShare:
      return std::make_unique<CurrFairSharePolicy>();
    case AlgorithmId::kDecayFairShare:
      return std::make_unique<DecayingFairSharePolicy>(spec.decay_half_life);
    case AlgorithmId::kRandom:
      return std::make_unique<RandomPolicy>(seed);
    case AlgorithmId::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case AlgorithmId::kRef:
    case AlgorithmId::kRand:
      throw std::invalid_argument(
          "make_policy: REF/RAND are ensemble schedulers, not policies");
  }
  throw std::invalid_argument("make_policy: unknown algorithm");
}

RunResult run_algorithm(const Instance& inst, const AlgorithmSpec& spec,
                        Time horizon, std::uint64_t seed) {
  RunResult result;
  switch (spec.id) {
    case AlgorithmId::kRef: {
      RefScheduler ref(inst);
      ref.run(horizon);
      result.schedule = ref.schedule();
      result.utilities2 = ref.utilities2();
      result.work_done = ref.reference_work();
      return result;
    }
    case AlgorithmId::kRand: {
      RandScheduler rand(inst, RandOptions{spec.rand_samples, seed});
      rand.run(horizon);
      result.schedule = rand.schedule();
      result.utilities2 = rand.utilities2();
      result.work_done = rand.work_done();
      return result;
    }
    default: {
      EngineOptions options;
      if (spec.id == AlgorithmId::kDirectContr) {
        // Fig. 9 considers processors in a random order; the owner of the
        // machine a job lands on receives the contribution credit.
        options.machine_pick = MachinePick::kRandomFree;
        options.seed = seed;
      }
      Engine engine(inst, options);
      std::unique_ptr<Policy> policy = make_policy(spec, seed);
      engine.run(*policy, horizon);
      result.schedule = engine.schedule();
      result.utilities2.resize(inst.num_orgs());
      for (OrgId u = 0; u < inst.num_orgs(); ++u) {
        result.utilities2[u] = engine.psi2(u);
      }
      result.work_done = engine.total_work_done();
      return result;
    }
  }
}

}  // namespace fairsched
