#include "sched/runner.h"

#include "exp/policy_registry.h"

namespace fairsched {

PolicySpec parse_algorithm(const std::string& name) {
  return exp::PolicyRegistry::global().make(name);
}

RunResult run_algorithm(const Instance& inst, const PolicySpec& spec,
                        Time horizon, std::uint64_t seed) {
  return exp::PolicyRegistry::global().instantiate(spec)->run(inst, horizon,
                                                              seed);
}

std::unique_ptr<Policy> make_policy(const PolicySpec& spec,
                                    std::uint64_t seed) {
  return exp::PolicyRegistry::global().make_policy(spec, seed);
}

}  // namespace fairsched
