#pragma once

// RAND (Fig. 6): randomized approximation of the fair schedule.
//
// N random orderings (permutations) of the organizations are drawn up
// front. Every prefix of every ordering yields a pair of coalitions
// (C', C' + u) for the organization u that follows the prefix; the Shapley
// contribution of u is estimated as the average marginal value over its N
// pairs (Eq. 2 sampled; Theorem 5.6's Hoeffding bound gives the FPRAS for
// unit-size jobs).
//
// The value v(C') of a sampled coalition is read off a *simplified*
// schedule maintained for it. For unit-size jobs any greedy schedule yields
// the same value (Prop. 5.4), so the simplified schedules are driven by an
// arbitrary greedy policy (FCFS here); with jobs of mixed sizes this is the
// heuristic the paper evaluates in Section 7. Distinct permutation prefixes
// that induce the same coalition share one engine.
//
// The real (grand-coalition) schedule starts the front job of the waiting
// organization maximizing the estimated deficit phi(u) - psi(u), exactly as
// REF does with the exact contributions.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/coalition.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "sim/engine.h"

namespace fairsched {

struct RandOptions {
  std::size_t samples = 15;  // N; the paper evaluates N = 15 and N = 75
  std::uint64_t seed = 1;
};

// Returns the N prescribed by Theorem 5.6 for accuracy eps with confidence
// lambda over k organizations.
std::size_t rand_theorem_samples(std::uint32_t k, double epsilon,
                                 double lambda);

class RandScheduler {
 public:
  RandScheduler(const Instance& inst, RandOptions options = {});

  void run(Time horizon);

  const Schedule& schedule() const { return grand_->schedule(); }
  std::vector<HalfUtil> utilities2() const;
  std::int64_t work_done() const { return grand_->total_work_done(); }
  // Estimated contributions phi (time units) at the current clock.
  std::vector<double> contributions() const;
  // Number of distinct sampled coalitions actually simulated.
  std::size_t distinct_coalitions() const { return sampled_.size(); }

 private:
  // Advances a sampled coalition's simplified FCFS schedule to time t.
  void advance_sampled(Engine& engine, Time t);
  // phi2 estimates from the sampled engines at the grand engine's clock.
  std::vector<double> contributions2() const;

  const Instance* inst_;
  RandOptions options_;
  std::unique_ptr<Engine> grand_;
  // mask -> simplified engine for the sampled coalition.
  std::unordered_map<Coalition::Mask, std::unique_ptr<Engine>> sampled_;
  // Per organization: masks of the sampled "predecessor" coalitions C'
  // (one per permutation; the pair is (C', C' | u)). Multiplicity matters.
  std::vector<std::vector<Coalition::Mask>> prefix_masks_;
  bool ran_ = false;
};

}  // namespace fairsched
