#pragma once

// Indexed per-organization state for incremental (push-based) policies.
//
// The push lifecycle of sim/policy.h lets a policy mirror the engine state
// it ranks organizations by, instead of rescanning every organization per
// decision. This header packages the three pieces every in-tree port uses:
//
//   * IncrementalPolicy — the mirror-bookkeeping base. The engine's
//     PolicyView::state_version() counts every observable state change
//     (events processed + jobs started); the base records the version the
//     mirror was last synchronized at. Notification handlers call track():
//     when the notification is exactly the next unseen change, the handler
//     applies its O(log n) delta; otherwise the mirror is stale (the policy
//     is being driven by a loop that steps the engine without attaching —
//     see Engine::attach) and select() heals itself by rebuilding from the
//     view via ensure_synced(). This keeps every port exact under BOTH
//     drivers: attached runs pay O(log n) per event, detached drivers
//     degrade to the historical O(n)-per-decision cost, never to a wrong
//     answer.
//
//   * KeyedArgmin<Key> — a tournament tree over organization ids with an
//     explicit priority key per id. argmin() is O(1), set()/clear() are
//     O(log n). Ties on equal keys resolve to the LOWER id, which is
//     exactly the "first strict improvement wins" rule of the scan loops
//     these trees replace — so scan and tree agree bit-for-bit as long as
//     the key is computed by the same expression the scan used.
//
//   * OrderStatSet — a Fenwick-backed set of organization ids supporting
//     O(log n) insert/erase/count_below/kth. Backs ROUNDROBIN (first member
//     at-or-after the cursor = kth(count_below(cursor))) and RANDOM (the
//     i-th smallest member is position i of the ascending candidate vector
//     the scan used to build, so one uniform draw indexes identically).

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/policy.h"

namespace fairsched {

// Base for policies that mirror engine state incrementally.
class IncrementalPolicy : public Policy {
 public:
  void reset(const PolicyView& view) override {
    rebuild(view);
    synced_version_ = view.state_version();
    ready_ = true;
  }

 protected:
  // True iff this notification is exactly the next unseen state change;
  // bumps the synced version. Apply the incremental delta only then —
  // otherwise skip it: the mirror is stale and select() will rebuild.
  bool track(const PolicyView& view) {
    if (ready_ && view.state_version() == synced_version_ + 1) {
      ++synced_version_;
      return true;
    }
    return false;
  }

  // Call on entry to select(): rebuilds the mirror when state changes were
  // missed (detached driver, or a policy that was never reset).
  void ensure_synced(const PolicyView& view) {
    if (!ready_ || view.state_version() != synced_version_) {
      rebuild(view);
      synced_version_ = view.state_version();
      ready_ = true;
    }
  }

  // Reconstructs the whole mirror from the view. Must be callable at any
  // time (it is the detached-driver fallback), so it cannot rely on any
  // notification having been delivered.
  virtual void rebuild(const PolicyView& view) = 0;

 private:
  std::uint64_t synced_version_ = 0;
  bool ready_ = false;
};

// Tournament (winner) tree: argmin of Key over a dense id range, ties to
// the lower id. Key needs operator<.
template <typename Key>
class KeyedArgmin {
 public:
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

  void init(std::uint32_t n) {
    base_ = 1;
    while (base_ < n) base_ <<= 1;
    keys_.assign(base_, Key{});
    present_.assign(base_, 0);
    win_.assign(2 * base_, kNone);
  }

  bool has(std::uint32_t i) const { return present_[i] != 0; }

  void set(std::uint32_t i, Key key) {
    keys_[i] = std::move(key);
    present_[i] = 1;
    win_[base_ + i] = i;
    pull_up(i);
  }

  void clear(std::uint32_t i) {
    if (!present_[i]) return;
    present_[i] = 0;
    win_[base_ + i] = kNone;
    pull_up(i);
  }

  // Id with the smallest key (lowest id on ties), kNone when empty.
  std::uint32_t argmin() const { return win_[1]; }

 private:
  bool better(std::uint32_t a, std::uint32_t b) const {
    if (b == kNone) return true;
    if (a == kNone) return false;
    if (keys_[a] < keys_[b]) return true;
    if (keys_[b] < keys_[a]) return false;
    return a < b;
  }

  void pull_up(std::uint32_t i) {
    for (std::size_t node = (base_ + i) >> 1; node >= 1; node >>= 1) {
      const std::uint32_t left = win_[2 * node];
      const std::uint32_t right = win_[2 * node + 1];
      win_[node] = better(left, right) ? left : right;
    }
  }

  std::size_t base_ = 1;
  std::vector<Key> keys_;
  std::vector<char> present_;
  std::vector<std::uint32_t> win_;
};

// Order-statistics set over a dense id range (Fenwick tree of membership).
class OrderStatSet {
 public:
  void init(std::uint32_t n) {
    n_ = n;
    log_ = 0;
    while ((std::uint32_t{1} << (log_ + 1)) <= n_) ++log_;
    tree_.assign(n_ + 1, 0);
    member_.assign(n_, 0);
    size_ = 0;
  }

  std::uint32_t size() const { return size_; }
  bool contains(std::uint32_t i) const { return member_[i] != 0; }

  void insert(std::uint32_t i) {
    if (member_[i]) return;
    member_[i] = 1;
    ++size_;
    for (std::uint32_t x = i + 1; x <= n_; x += x & (~x + 1)) tree_[x] += 1;
  }

  void erase(std::uint32_t i) {
    if (!member_[i]) return;
    member_[i] = 0;
    --size_;
    for (std::uint32_t x = i + 1; x <= n_; x += x & (~x + 1)) tree_[x] -= 1;
  }

  // Number of members with id strictly below i.
  std::uint32_t count_below(std::uint32_t i) const {
    std::uint32_t sum = 0;
    for (std::uint32_t x = i; x > 0; x -= x & (~x + 1)) sum += tree_[x];
    return sum;
  }

  // k-th smallest member id (0-based). Precondition: k < size().
  std::uint32_t kth(std::uint32_t k) const {
    std::uint32_t pos = 0;
    std::uint32_t remaining = k + 1;
    for (std::uint32_t step = std::uint32_t{1} << log_; step > 0; step >>= 1) {
      const std::uint32_t next = pos + step;
      if (next <= n_ && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
    }
    return pos;
  }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t log_ = 0;
  std::uint32_t size_ = 0;
  std::vector<std::uint32_t> tree_;
  std::vector<char> member_;
};

}  // namespace fairsched
