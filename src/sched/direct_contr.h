#pragma once

// DIRECTCONTR (Fig. 9): a polynomial heuristic for Shapley-fair scheduling.
//
// The contribution of an organization is estimated *directly*, without
// considering subcoalitions: the unit parts executed on organization u's
// machines generate psi_sp-value, and that value is credited to u as its
// estimated contribution phi~(u). The utility psi(u) is, as everywhere, the
// psi_sp-value of u's own jobs. Waiting jobs are started for the
// organization with the largest deficit phi~(u) - psi(u).
//
// The engine's contribution accounting implements the accrual; machines are
// taken in random order (MachinePick::kRandomFree), matching the random
// processor permutation in the paper's pseudo-code.
//
// Note on the published pseudo-code: Fig. 9's inner loop credits
// phi[own(J)] and psi[own(m)], i.e. contribution to the job owner and
// utility to the machine owner, which contradicts the surrounding text
// ("the job started on processor m increases the contribution of the owner
// of m"). We implement the text's semantics (see DESIGN.md).

#include "sim/policy.h"

namespace fairsched {

class DirectContrPolicy final : public Policy {
 public:
  OrgId select(const PolicyView& view) override;
};

}  // namespace fairsched
