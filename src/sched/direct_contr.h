#pragma once

// DIRECTCONTR (Fig. 9): a polynomial heuristic for Shapley-fair scheduling.
//
// The contribution of an organization is estimated *directly*, without
// considering subcoalitions: the unit parts executed on organization u's
// machines generate psi_sp-value, and that value is credited to u as its
// estimated contribution phi~(u). The utility psi(u) is, as everywhere, the
// psi_sp-value of u's own jobs. Waiting jobs are started for the
// organization with the largest deficit phi~(u) - psi(u).
//
// The engine's contribution accounting implements the accrual; machines are
// taken in random order (MachinePick::kRandomFree), matching the random
// processor permutation in the paper's pseudo-code.
//
// Note on the published pseudo-code: Fig. 9's inner loop credits
// phi[own(J)] and psi[own(m)], i.e. contribution to the job owner and
// utility to the machine owner, which contradicts the surrounding text
// ("the job started on processor m increases the contribution of the owner
// of m"). We implement the text's semantics (see DESIGN.md).
//
// Incremental: argmax of the integer deficit = argmin of psi2 - contrib2
// (ties to the lower id, like the scan's first-strict-improvement rule).
// Both accounts accrue with time for any organization that ever ran a job
// or hosted one, so those keys drift between timestamps: the policy keeps a
// drift flag per organization and refreshes flagged waiting keys once per
// distinct decision timestamp. Within one timestamp no key moves (starting
// or completing a job adds no *accrued* value at that same instant).

#include <vector>

#include "sched/org_index.h"
#include "sim/policy.h"

namespace fairsched {

class DirectContrPolicy final : public IncrementalPolicy {
 public:
  OrgId select(const PolicyView& view) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;

 protected:
  void rebuild(const PolicyView& view) override;

 private:
  // Minimized key: 2*psi(u) - 2*phi~(u), i.e. the negated doubled deficit.
  HalfUtil key_of(const PolicyView& view, OrgId u) const {
    return view.psi2(u) - view.contrib_psi2(u);
  }
  void repair(const PolicyView& view);

  KeyedArgmin<HalfUtil> index_;
  // Organizations whose key moves as time passes: anything with a running
  // job, a busy machine, or past work on either side of the accounting
  // (the closed-form accrual has a work * dt term, so history alone
  // drifts). Never cleared — work never decreases.
  std::vector<char> drifting_;
  Time repaired_at_ = 0;
};

}  // namespace fairsched
