#pragma once

// DEPRECATED compatibility shims over the open policy API.
//
// The closed AlgorithmId/AlgorithmSpec dispatch that used to live here was
// replaced by PolicySpec (sched/policy_spec.h) + the Algorithm interface
// (sched/algorithm.h) + the self-describing PolicyRegistry
// (exp/policy_registry.h), which owns the one name grammar. These free
// functions remain as thin delegates to the global registry so existing
// call sites (tests, examples, benches) keep working; new code should use
// the registry directly:
//
//   PolicyRegistry::global().make("rand75")          -> PolicySpec
//   PolicyRegistry::global().instantiate(spec)       -> Algorithm
//   PolicyRegistry::global().make_policy(spec, seed) -> Policy

#include <cstdint>
#include <memory>
#include <string>

#include "core/instance.h"
#include "core/types.h"
#include "sched/algorithm.h"
#include "sched/policy_spec.h"
#include "sim/policy.h"

namespace fairsched {

// Deprecated: use PolicyRegistry::global().make(name). Parses names like
// "ref", "rand15", "decayfairshare2000", "fairshare(...)"
// (case-insensitive); throws std::invalid_argument on unknown names.
PolicySpec parse_algorithm(const std::string& name);

// Deprecated: use PolicyRegistry::global().instantiate(spec)->run(...).
// Runs the algorithm on `inst` until `horizon`. `seed` feeds the
// algorithm's internal randomness; deterministic algorithms ignore it.
RunResult run_algorithm(const Instance& inst, const PolicySpec& spec,
                        Time horizon, std::uint64_t seed);

// Deprecated: use PolicyRegistry::global().make_policy(spec, seed).
// Factory for the engine-shaped policies (not REF/RAND, which are
// whole-schedule algorithms — those throw std::invalid_argument).
std::unique_ptr<Policy> make_policy(const PolicySpec& spec,
                                    std::uint64_t seed = 0);

}  // namespace fairsched
