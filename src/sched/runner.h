#pragma once

// A uniform way to run any of the paper's algorithms on an instance and
// collect the quantities the experiments need (Section 7): the schedule,
// the strategy-proof utility vector at the horizon, and the completed work.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "sim/policy.h"

namespace fairsched {

enum class AlgorithmId {
  kRef,            // exact exponential reference (REF)
  kRand,           // randomized approximation (RAND)
  kDirectContr,    // direct-contribution heuristic
  kRoundRobin,
  kFairShare,
  kUtFairShare,
  kCurrFairShare,
  kDecayFairShare, // fair share with exponential usage decay (extension)
  kRandom,         // uniformly random waiting organization (extension)
  kFcfs,
};

struct AlgorithmSpec {
  AlgorithmId id = AlgorithmId::kFairShare;
  std::size_t rand_samples = 15;    // N for kRand
  double decay_half_life = 5000.0;  // for kDecayFairShare
  std::string display_name() const;

  // Specs comparing equal produce bit-identical runs for the same
  // (instance, horizon, seed); the sweep engine's workload/baseline cache
  // relies on this to share runs across axis points (exp/workload_cache.h).
  friend bool operator==(const AlgorithmSpec&, const AlgorithmSpec&) = default;
};

// Parses names like "ref", "rand15", "rand75", "directcontr", "roundrobin",
// "fairshare", "utfairshare", "currfairshare", "decayfairshare2000",
// "random", "fcfs" (case-insensitive). Throws std::invalid_argument on
// unknown names.
AlgorithmSpec parse_algorithm(const std::string& name);

struct RunResult {
  Schedule schedule;
  std::vector<HalfUtil> utilities2;  // 2*psi_sp per organization at horizon
  std::int64_t work_done = 0;        // completed unit parts at horizon
};

// Runs the algorithm on `inst` until `horizon`. `seed` feeds the algorithm's
// internal randomness (RAND's permutations, DIRECTCONTR's machine order);
// deterministic algorithms ignore it.
RunResult run_algorithm(const Instance& inst, const AlgorithmSpec& spec,
                        Time horizon, std::uint64_t seed);

// Factory for the plain policies (not REF/RAND, which are not Policy-shaped).
// `seed` feeds randomized policies; deterministic ones ignore it.
std::unique_ptr<Policy> make_policy(AlgorithmId id, std::uint64_t seed = 0);
std::unique_ptr<Policy> make_policy(const AlgorithmSpec& spec,
                                    std::uint64_t seed = 0);

}  // namespace fairsched
