#pragma once

// Uniformly random selection among organizations with waiting jobs: the
// "no policy at all" baseline. Deterministic given the seed.

#include "sim/policy.h"
#include "util/rng.h"

namespace fairsched {

class RandomPolicy final : public Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  OrgId select(const PolicyView& view) override;

 private:
  Rng rng_;
};

}  // namespace fairsched
