#pragma once

// Uniformly random selection among organizations with waiting jobs: the
// "no policy at all" baseline. Deterministic given the seed.
//
// Incremental: the waiting set is an order-statistic set; the scan used to
// draw one index into the ascending candidate vector, and kth(i) is exactly
// that vector's element i, so the RNG stream and every pick are unchanged.

#include "sched/org_index.h"
#include "sim/policy.h"
#include "util/rng.h"

namespace fairsched {

class RandomPolicy final : public IncrementalPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  OrgId select(const PolicyView& view) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;

 protected:
  void rebuild(const PolicyView& view) override;

 private:
  OrderStatSet waiting_;
  Rng rng_;
};

}  // namespace fairsched
