#include "sched/direct_contr.h"

#include <stdexcept>

#include "core/types.h"

namespace fairsched {

OrgId DirectContrPolicy::select(const PolicyView& view) {
  OrgId best = kNoOrg;
  HalfUtil best_deficit = 0;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) == 0) continue;
    const HalfUtil deficit = view.contrib_psi2(u) - view.psi2(u);
    if (best == kNoOrg || deficit > best_deficit) {
      best = u;
      best_deficit = deficit;
    }
  }
  if (best == kNoOrg) {
    throw std::logic_error("DirectContrPolicy::select: no waiting job");
  }
  return best;
}

}  // namespace fairsched
