#include "sched/direct_contr.h"

#include <stdexcept>

#include "core/types.h"

namespace fairsched {

OrgId DirectContrPolicy::select(const PolicyView& view) {
  ensure_synced(view);
  repair(view);
  const OrgId best = index_.argmin();
  if (best == KeyedArgmin<HalfUtil>::kNone) {
    throw std::logic_error("DirectContrPolicy::select: no waiting job");
  }
  return best;
}

void DirectContrPolicy::repair(const PolicyView& view) {
  if (view.now() == repaired_at_) return;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (drifting_[u] && view.waiting(u) > 0) index_.set(u, key_of(view, u));
  }
  repaired_at_ = view.now();
}

void DirectContrPolicy::on_release(const PolicyView& view, OrgId org) {
  if (!track(view)) return;
  index_.set(org, key_of(view, org));
}

void DirectContrPolicy::on_complete(const PolicyView& view, OrgId /*org*/,
                                    MachineId /*machine*/) {
  // A completion moves no key at its own instant (accrual is time-based and
  // already folded to now), and the completing organization is drifting
  // anyway, so the next repair covers it.
  track(view);
}

void DirectContrPolicy::on_start(const PolicyView& view, OrgId org,
                                 std::uint32_t /*index*/, MachineId machine) {
  if (!track(view)) return;
  drifting_[org] = 1;
  drifting_[view.machine_owner(machine)] = 1;
  if (view.waiting(org) > 0) {
    index_.set(org, key_of(view, org));
  } else {
    index_.clear(org);
  }
}

void DirectContrPolicy::rebuild(const PolicyView& view) {
  index_.init(view.num_orgs());
  drifting_.assign(view.num_orgs(), 0);
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    drifting_[u] = view.running(u) > 0 || view.busy_machines(u) > 0 ||
                   view.work_done(u) > 0 || view.contrib_work(u) > 0;
    if (view.waiting(u) > 0) index_.set(u, key_of(view, u));
  }
  repaired_at_ = view.now();
}

}  // namespace fairsched
