#include "sched/fcfs.h"

#include <stdexcept>

#include "core/types.h"

namespace fairsched {

OrgId FcfsPolicy::select(const PolicyView& view) {
  OrgId best = kNoOrg;
  Time best_release = kTimeInfinity;
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) == 0) continue;
    const Time r = view.front_release(u);
    if (best == kNoOrg || r < best_release) {
      best = u;
      best_release = r;
    }
  }
  if (best == kNoOrg) {
    throw std::logic_error("FcfsPolicy::select: no waiting job");
  }
  return best;
}

}  // namespace fairsched
