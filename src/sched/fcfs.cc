#include "sched/fcfs.h"

#include <stdexcept>

#include "core/types.h"

namespace fairsched {

OrgId FcfsPolicy::select(const PolicyView& view) {
  ensure_synced(view);
  const OrgId best = index_.argmin();
  if (best == KeyedArgmin<Time>::kNone) {
    throw std::logic_error("FcfsPolicy::select: no waiting job");
  }
  return best;
}

void FcfsPolicy::on_release(const PolicyView& view, OrgId org) {
  if (!track(view)) return;
  // The front job only changes when the queue was empty, but re-setting the
  // same key is harmless and cheaper than distinguishing.
  index_.set(org, view.front_release(org));
}

void FcfsPolicy::on_complete(const PolicyView& view, OrgId /*org*/,
                             MachineId /*machine*/) {
  track(view);  // completions do not move any FCFS key
}

void FcfsPolicy::on_start(const PolicyView& view, OrgId org,
                          std::uint32_t /*index*/, MachineId /*machine*/) {
  if (!track(view)) return;
  if (view.waiting(org) > 0) {
    index_.set(org, view.front_release(org));
  } else {
    index_.clear(org);
  }
}

void FcfsPolicy::rebuild(const PolicyView& view) {
  index_.init(view.num_orgs());
  for (OrgId u = 0; u < view.num_orgs(); ++u) {
    if (view.waiting(u) > 0) index_.set(u, view.front_release(u));
  }
}

}  // namespace fairsched
