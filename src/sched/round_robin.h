#pragma once

// ROUNDROBIN (Section 7.1): cycles through the list of organizations to
// determine whose job starts next; organizations with no waiting job are
// skipped. A fairness-agnostic baseline.

#include "sim/policy.h"

namespace fairsched {

class RoundRobinPolicy final : public Policy {
 public:
  void reset(const PolicyView& view) override;
  OrgId select(const PolicyView& view) override;

 private:
  OrgId cursor_ = 0;
};

}  // namespace fairsched
