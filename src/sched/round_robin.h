#pragma once

// ROUNDROBIN (Section 7.1): cycles through the list of organizations to
// determine whose job starts next; organizations with no waiting job are
// skipped. A fairness-agnostic baseline.
//
// Incremental: the set of waiting organizations lives in an order-statistic
// set; "first waiting organization at or after the cursor (wrapping)" is
// kth(count_below(cursor)), so select() is O(log n).

#include "sched/org_index.h"
#include "sim/policy.h"

namespace fairsched {

class RoundRobinPolicy final : public IncrementalPolicy {
 public:
  void reset(const PolicyView& view) override;
  OrgId select(const PolicyView& view) override;
  void on_release(const PolicyView& view, OrgId org) override;
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override;
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override;

 protected:
  void rebuild(const PolicyView& view) override;

 private:
  OrderStatSet waiting_;
  OrgId cursor_ = 0;
};

}  // namespace fairsched
