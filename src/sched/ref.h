#pragma once

// REF (Fig. 1 / Fig. 3): the exact, exponential fair scheduling algorithm.
//
// REF maintains a greedy schedule for *every* nonempty subcoalition of the
// grand coalition (2^k - 1 of them). Whenever a coalition C must start a job
// (free machine + waiting job), the contributions phi(u) of its members are
// computed from the current values v(C') of all subcoalitions C' of C via
// the Shapley subset formula (Eq. 1), and the job of the organization
// maximizing phi(u) - psi(u) is started (the specialized psi_sp rule of
// Fig. 3; with the generic Distance rule of Fig. 1 available for arbitrary
// utility functions — both provably coincide for psi_sp, which tests verify).
//
// Scheduling decisions of C recursively depend on the subcoalitions'
// schedules *at the same time moment* (Definition 3.1); we drive all 2^k-1
// engines through one global event timeline ordered by (time, coalition
// size): by the time coalition C acts at time t, every subcoalition has
// already processed its own events at t, so its value v(C', t) is current.
// Between events, engines advance by closed-form accrual only (a greedy
// algorithm makes no decision while no machine frees and no job arrives),
// which makes the event-driven run identical to the paper's per-time-moment
// loop.
//
// Complexity per decision *burst* of a size-s coalition: O(2^s * s) for the
// hoisted Shapley subset formula (the contribution vector cannot change
// while the clock stands still, so repeat decisions at one time moment
// reuse it; Prop. 3.4 aggregate: O(k * 3^k) per time moment), with each
// subcoalition value an O(1) closed-form read off the engine's aggregate
// accounting. Memory O(2^k) engines. The constructor rejects k > 16.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/coalition.h"
#include "core/instance.h"
#include "core/schedule.h"
#include "core/types.h"
#include "metrics/utility.h"
#include "sim/engine.h"

namespace fairsched {

// Pluggable utility for the generic Distance rule (Fig. 1). Evaluates the
// utility of organization `org` at time `t` in the given schedule. Only the
// executed parts of jobs may influence the value (non-clairvoyance).
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;
  virtual double eval(const Instance& inst, const Schedule& schedule,
                      OrgId org, Time t) const = 0;
};

// The strategy-proof utility psi_sp as a UtilityFunction.
class SpUtilityFn final : public UtilityFunction {
 public:
  double eval(const Instance& inst, const Schedule& schedule, OrgId org,
              Time t) const override;
};

// Throughput-like utility: completed unit parts (breaks the starting-times
// anonymity axiom; provided for generic-REF experiments).
class CompletedWorkUtilityFn final : public UtilityFunction {
 public:
  double eval(const Instance& inst, const Schedule& schedule, OrgId org,
              Time t) const override;
};

struct RefOptions {
  // When set, REF uses the generic Distance rule of Fig. 1 with this
  // utility (slower: re-evaluates utilities from schedules). When null, the
  // specialized psi_sp rule of Fig. 3 runs on the engines' exact integer
  // accounting.
  const UtilityFunction* generic_utility = nullptr;
};

class RefScheduler {
 public:
  static constexpr std::uint32_t kMaxOrgs = 16;

  RefScheduler(const Instance& inst, RefOptions options = {});

  // Runs all coalitions up to `horizon`. May be called once.
  void run(Time horizon);

  // --- results (valid after run) -----------------------------------------
  const Schedule& schedule() const { return grand_engine().schedule(); }
  // The reference fair utility vector psi* (2*psi per organization).
  std::vector<HalfUtil> utilities2() const;
  // p_tot: completed unit parts in the fair schedule by the horizon.
  std::int64_t reference_work() const { return grand_engine().total_work_done(); }
  // Shapley contributions phi(u) (time units) of the grand coalition at the
  // horizon — the ideal fair division REF chases.
  std::vector<double> contributions() const;
  // Access to any subcoalition's engine (diagnostics, tests).
  const Engine& engine(Coalition c) const { return *engines_[c.mask()]; }

 private:
  const Engine& grand_engine() const { return *engines_[grand_.mask()]; }
  Engine& engine_mut(Coalition c) { return *engines_[c.mask()]; }

  // Processes coalition `c`'s due events at time t and makes its scheduling
  // decisions; subcoalitions are brought to time t first.
  void process_coalition_at(Coalition c, Time t);

  // Contributions phi2 (in half-units, doubles because of the factorial
  // weights) of the members of `relevant` (a subset of `c`) from the
  // subcoalition values at time t (valid when no subcoalition has
  // unprocessed events at or before t). Entries outside `relevant` are
  // left at zero — each phi2[u] is an independent accumulator, so
  // restricting the set changes nothing about the computed values.
  // Returns a reference to a scratch buffer overwritten by the next call.
  const std::vector<double>& contributions2_of(Coalition c, Time t,
                                               Coalition relevant) const;

  // Distance rule of Fig. 1 for the generic utility: the (doubled) distance
  // after tentatively starting `u`'s front job at time t.
  double generic_distance(Coalition c, OrgId u, Time t,
                          const std::vector<double>& phi,
                          const std::vector<double>& psi) const;

  // Fig. 3 rule with the per-burst contribution vector hoisted by
  // process_coalition_at (phi2 cannot change while the clock stands still).
  OrgId select_sp(Coalition c, const std::vector<double>& phi2) const;
  // Fig. 1 Distance rule for the generic utility; evaluated per decision.
  OrgId select_generic(Coalition c, Time t);

  const Instance* inst_;
  RefOptions options_;
  Coalition grand_;
  std::vector<std::unique_ptr<Engine>> engines_;  // indexed by mask; [0] null
  std::vector<ShapleyWeights> weights_;           // per coalition size 1..k
  // Per-burst scratch for contributions2_of: subcoalition values indexed by
  // mask, and the returned contribution vector (both overwritten per call).
  mutable std::vector<double> vcache_;
  mutable std::vector<double> phi2_scratch_;
  // Write-through aggregate mirrors, indexed by mask: each engine refreshes
  // its slot whenever its aggregates change, so the Shapley pass reads all
  // 2^s subcoalition values from one flat array (cache-friendly) instead of
  // dereferencing 2^s scattered engine objects. Never resized after the
  // constructor registers the slots.
  std::vector<Engine::AggSnapshot> agg_;
  bool ran_ = false;
};

}  // namespace fairsched
