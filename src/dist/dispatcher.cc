#include "dist/dispatcher.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace fairsched::dist {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return buf;
}

// Same FNV-1a as the plan fingerprint (exp/sweep_plan.cc); here it folds
// the whole-plan fingerprint with one shard's family set, giving each
// shard a stable identity for the dry-run plan and for humans diffing
// two dispatch plans.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string shard_label(std::size_t shard, std::size_t count) {
  return std::to_string(shard) + "/" + std::to_string(count);
}

}  // namespace

std::string shard_artifact_filename(std::size_t shard,
                                    std::size_t shard_count) {
  return "shard-" + std::to_string(shard) + "-of-" +
         std::to_string(shard_count) + ".json";
}

Dispatcher::Dispatcher(std::vector<std::unique_ptr<WorkerTransport>> workers,
                       DispatchOptions options, DispatchLog* log)
    : workers_(std::move(workers)), options_(std::move(options)), log_(log) {
  if (workers_.empty()) {
    throw std::invalid_argument("Dispatcher: need at least one worker");
  }
  for (const auto& worker : workers_) {
    if (!worker) {
      throw std::invalid_argument("Dispatcher: null worker transport");
    }
  }
  if (options_.artifact_dir.empty()) {
    throw std::invalid_argument(
        "Dispatcher: artifact_dir is required (artifacts are how a killed "
        "dispatch resumes)");
  }
  if (options_.max_attempts == 0) {
    throw std::invalid_argument("Dispatcher: max_attempts must be >= 1");
  }
  if (options_.speculate && options_.speculate_factor <= 0.0) {
    throw std::invalid_argument(
        "Dispatcher: speculate_factor must be > 0");
  }
}

std::string Dispatcher::artifact_path(std::size_t shard) const {
  return options_.artifact_dir + "/" +
         shard_artifact_filename(shard, shard_count_);
}

double Dispatcher::p50_ms_locked() const {
  if (completed_ms_.empty()) return 0.0;
  std::vector<double> sorted = completed_ms_;
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  return sorted[mid];
}

std::size_t Dispatcher::claimable_shard_locked(
    std::chrono::steady_clock::time_point now, bool* speculative) const {
  *speculative = false;
  bool any_pending = false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].state == ShardState::kPending) {
      any_pending = true;
      if (shards_[s].not_before <= now) return s;
    }
  }
  // Speculation only fires with the queue fully drained: a shard sitting
  // out a backoff is still queued work, not a straggler.
  if (!options_.speculate || any_pending) return kNone;
  const double p50 = p50_ms_locked();
  if (p50 <= 0.0) return kNone;  // nothing completed yet: no baseline
  const double threshold = p50 * options_.speculate_factor;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.state != ShardState::kRunning || shard.running != 1 ||
        shard.speculated) {
      continue;
    }
    const double elapsed =
        std::chrono::duration<double, std::milli>(now - shard.started)
            .count();
    if (elapsed > threshold) {
      *speculative = true;
      return s;
    }
  }
  return kNone;
}

std::string Dispatcher::validate_artifact(const exp::SweepPlan& plan,
                                          std::size_t shard,
                                          const std::string& payload,
                                          const std::string& worker,
                                          std::size_t attempt,
                                          std::uint64_t* digest) {
  const std::string path = artifact_path(shard);
  std::string problem;
  *digest = 0;
  try {
    const exp::ShardArtifact artifact = exp::parse_shard_artifact(
        payload,
        "artifact for shard " + shard_label(shard, shard_count_) +
            " from " + worker);
    if (artifact.fingerprint != plan.fingerprint) {
      problem = "artifact from " + worker +
                " was produced by a different sweep plan (fingerprint " +
                fingerprint_hex(artifact.fingerprint) + " != plan " +
                fingerprint_hex(plan.fingerprint) + ")";
    } else if (artifact.shard.index != shard ||
               artifact.shard.count != shard_count_) {
      problem = "artifact from " + worker + " covers shard " +
                shard_label(artifact.shard.index, artifact.shard.count) +
                ", expected " + shard_label(shard, shard_count_);
    } else {
      *digest = exp::artifact_determinism_digest(artifact);
    }
  } catch (const std::exception& e) {
    problem = e.what();
  }

  if (!problem.empty()) {
    // Quarantine, never fold: the corrupt bytes are kept next to the
    // artifact slot they failed to fill, for post-mortems.
    const std::string quarantine =
        path + ".quarantined-a" + std::to_string(attempt);
    std::ofstream out(quarantine, std::ios::binary);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.close();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.quarantined;
    }
    if (log_) {
      log_->event("quarantine",
                  {DispatchLog::num("shard", shard),
                   DispatchLog::str("worker", worker),
                   DispatchLog::num("attempt", attempt),
                   DispatchLog::str("file", quarantine),
                   DispatchLog::str("reason", problem)});
    }
  }
  return problem;
}

std::string Dispatcher::write_artifact(std::size_t shard,
                                       const std::string& payload) {
  // Write-then-rename so a dispatch killed mid-write never leaves a
  // half-written file where --resume would find it. A losing duplicate
  // racing this rename is harmless: duplicates are digest-verified
  // identical before either file matters.
  const std::string path = artifact_path(shard);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return "cannot open artifact file for writing: " + tmp;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) return "failed writing artifact file: " + tmp;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return "cannot rename artifact into place: " + path + ": " +
           ec.message();
  }
  return "";
}

void Dispatcher::fail_shard_locked(std::size_t shard,
                                   const std::string& worker,
                                   const std::string& detail) {
  ++stats_.failed_attempts;
  Shard& state = shards_[shard];
  if (state.running > 0) {
    // A duplicate of this shard is still in flight: record the failure
    // but do not requeue — the survivor may still win, and a later
    // failure with nothing in flight requeues normally.
    state.state = ShardState::kRunning;
    if (log_) {
      log_->event("fail",
                  {DispatchLog::num("shard", shard),
                   DispatchLog::str("worker", worker),
                   DispatchLog::num("attempt", state.attempts),
                   DispatchLog::str("reason", detail),
                   DispatchLog::str("note", "duplicate still in flight")});
    }
    return;
  }
  state.state = ShardState::kPending;
  state.speculated = false;  // a fresh attempt cycle may speculate again
  if (state.attempts >= options_.max_attempts) {
    if (!fatal_) {
      fatal_ = true;
      fatal_reason_ = "shard " + shard_label(shard, shard_count_) +
                      " failed after " + std::to_string(state.attempts) +
                      " attempt(s); last error: " + detail;
    }
    if (log_) {
      log_->event("give-up", {DispatchLog::num("shard", shard),
                              DispatchLog::str("worker", worker),
                              DispatchLog::num("attempts", state.attempts),
                              DispatchLog::str("reason", detail)});
    }
    return;
  }
  std::size_t exponent = state.attempts > 0 ? state.attempts - 1 : 0;
  if (exponent > 20) exponent = 20;  // the cap clamps anyway; avoid UB
  std::chrono::milliseconds delay = options_.backoff * (std::size_t{1}
                                                        << exponent);
  if (delay > options_.backoff_cap) delay = options_.backoff_cap;
  state.not_before = std::chrono::steady_clock::now() + delay;
  if (log_) {
    log_->event(
        "fail",
        {DispatchLog::num("shard", shard),
         DispatchLog::str("worker", worker),
         DispatchLog::num("attempt", state.attempts),
         DispatchLog::str("reason", detail),
         DispatchLog::num("retry_in_ms",
                          static_cast<std::uint64_t>(delay.count()))});
  }
}

void Dispatcher::worker_loop(std::size_t worker_index,
                             const exp::SweepPlan& plan,
                             const DispatchRequest& request,
                             const Progress& progress) {
  WorkerTransport& transport = *workers_[worker_index];
  std::size_t consecutive_failures = 0;
  bool retired = false;
  while (true) {
    std::size_t shard = kNone;
    std::size_t attempt = 0;
    bool speculative = false;
    double spec_elapsed_ms = 0.0;
    double spec_threshold_ms = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (fatal_ || done_count_ == shard_count_) break;
        const auto now = std::chrono::steady_clock::now();
        shard = claimable_shard_locked(now, &speculative);
        if (shard != kNone) break;
        // Nothing claimable: wake at the earliest backoff gate or
        // speculation threshold, or on a completion / requeue / abort
        // notification (this wait is the "work-stealing" idle state — the
        // first woken worker claims the next shard, whoever ran its
        // previous attempt).
        auto wake = std::chrono::steady_clock::time_point::max();
        bool any_pending = false;
        for (const Shard& s : shards_) {
          if (s.state == ShardState::kPending) {
            any_pending = true;
            wake = std::min(wake, s.not_before);
          }
        }
        if (options_.speculate && !any_pending) {
          const double p50 = p50_ms_locked();
          if (p50 > 0.0) {
            const auto threshold =
                std::chrono::milliseconds(static_cast<std::int64_t>(
                    p50 * options_.speculate_factor) +
                    1);
            for (const Shard& s : shards_) {
              if (s.state == ShardState::kRunning && s.running == 1 &&
                  !s.speculated) {
                wake = std::min(wake, s.started + threshold);
              }
            }
          }
        }
        if (wake == std::chrono::steady_clock::time_point::max()) {
          cv_.wait(lock);
        } else {
          cv_.wait_until(lock, wake);
        }
      }
      if (shard == kNone) break;
      Shard& claimed = shards_[shard];
      claimed.state = ShardState::kRunning;
      if (speculative) {
        // Duplicate of the attempt already in flight: never counts
        // toward max_attempts.
        claimed.speculated = true;
        attempt = claimed.attempts;
        ++stats_.speculative;
        spec_elapsed_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() -
                              claimed.started)
                              .count();
        spec_threshold_ms = p50_ms_locked() * options_.speculate_factor;
      } else {
        attempt = ++claimed.attempts;
      }
      if (claimed.running == 0) {
        claimed.started = std::chrono::steady_clock::now();
      }
      ++claimed.running;
      claimed.running_workers.push_back(worker_index);
      ++stats_.attempts;
    }

    if (log_) {
      if (speculative) {
        log_->event(
            "speculate",
            {DispatchLog::num("shard", shard),
             DispatchLog::str("worker", transport.name()),
             DispatchLog::num("attempt", attempt),
             DispatchLog::num("elapsed_ms", static_cast<std::uint64_t>(
                                                spec_elapsed_ms)),
             DispatchLog::num("threshold_ms", static_cast<std::uint64_t>(
                                                  spec_threshold_ms))});
      } else {
        log_->event("assign", {DispatchLog::num("shard", shard),
                               DispatchLog::str("worker", transport.name()),
                               DispatchLog::num("attempt", attempt)});
      }
    }
    DispatchRequest attempt_request = request;
    attempt_request.shard = shard;
    attempt_request.shard_count = shard_count_;
    if (transport.thread_override() !=
        WorkerTransport::kNoThreadOverride) {
      attempt_request.threads = transport.thread_override();
    }

    const auto attempt_started = std::chrono::steady_clock::now();
    WorkerTransport::Outcome outcome;
    bool transport_broken = false;
    try {
      outcome = transport.run_shard(attempt_request, options_.shard_timeout);
    } catch (const std::exception& e) {
      outcome.status = WorkerTransport::Outcome::Status::kFailed;
      outcome.detail = std::string("transport error: ") + e.what();
      transport_broken = true;
    }
    const double attempt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - attempt_started)
            .count();

    std::string failure;
    std::uint64_t digest = 0;
    if (outcome.status == WorkerTransport::Outcome::Status::kArtifact) {
      failure = validate_artifact(plan, shard, outcome.payload,
                                  transport.name(), attempt, &digest);
    } else if (outcome.detail.empty()) {
      failure = outcome.status == WorkerTransport::Outcome::Status::kTimeout
                    ? "attempt timed out"
                    : "attempt failed";
    } else {
      failure = outcome.detail;
    }

    // Leave the shard's in-flight set exactly once, then classify what
    // this attempt's ending means for the shard.
    enum class Result { kWin, kLoss, kMismatch, kAbandoned, kFail };
    Result result;
    std::uint64_t expected_digest = 0;
    std::vector<std::size_t> to_cancel;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Shard& state = shards_[shard];
      auto self = std::find(state.running_workers.begin(),
                            state.running_workers.end(), worker_index);
      if (self != state.running_workers.end()) {
        state.running_workers.erase(self);
      }
      if (state.running > 0) --state.running;
      if (failure.empty()) {
        if (state.state != ShardState::kDone) {
          // First valid artifact wins, duplicate or not.
          state.state = ShardState::kDone;
          state.digest = digest;
          to_cancel = state.running_workers;
          result = Result::kWin;
        } else if (state.digest != digest) {
          expected_digest = state.digest;
          result = Result::kMismatch;
        } else {
          result = Result::kLoss;
        }
      } else {
        result = state.state == ShardState::kDone ? Result::kAbandoned
                                                  : Result::kFail;
      }
    }

    if (result == Result::kWin) {
      failure = write_artifact(shard, outcome.payload);
      if (failure.empty()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++done_count_;
          completed_ms_.push_back(attempt_ms);
        }
        if (log_) {
          log_->event(
              "complete",
              {DispatchLog::num("shard", shard),
               DispatchLog::str("worker", transport.name()),
               DispatchLog::num("attempt", attempt),
               DispatchLog::str("file", shard_artifact_filename(
                                            shard, shard_count_)),
               DispatchLog::str("speculative",
                                speculative ? "true" : "false")});
        }
        if (progress) {
          progress("shard " + shard_label(shard, shard_count_) + " via " +
                   transport.name());
        }
        consecutive_failures = 0;
        cv_.notify_all();
        // Losing duplicates are canceled outside the lock: their workers
        // free up immediately instead of running a dead attempt out.
        for (const std::size_t loser : to_cancel) {
          workers_[loser]->cancel_inflight();
        }
        continue;
      }
      // The artifact could not be persisted: surrender the win and fall
      // through to the failure path.
      std::lock_guard<std::mutex> lock(mu_);
      shards_[shard].state = ShardState::kRunning;
      result = Result::kFail;
    }

    if (result == Result::kLoss) {
      // The duplicate finished anyway and its artifact is digest-identical
      // to the winner's: the determinism contract held. Not a failure.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.duplicate_losses;
      }
      if (log_) {
        log_->event("duplicate-loss",
                    {DispatchLog::num("shard", shard),
                     DispatchLog::str("worker", transport.name()),
                     DispatchLog::num("attempt", attempt)});
      }
      consecutive_failures = 0;
      cv_.notify_all();
      continue;
    }

    if (result == Result::kMismatch) {
      // Nondeterministic worker output: the duplicate diverged from the
      // accepted artifact. Quarantine both and abort loudly — folding
      // either would silently break the byte-identical contract.
      const std::string path = artifact_path(shard);
      const std::string duplicate_quarantine =
          path + ".quarantined-duplicate";
      {
        std::ofstream out(duplicate_quarantine, std::ios::binary);
        out.write(outcome.payload.data(),
                  static_cast<std::streamsize>(outcome.payload.size()));
      }
      const std::string winner_quarantine = path + ".quarantined-divergent";
      std::error_code ec;
      std::filesystem::rename(path, winner_quarantine, ec);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.quarantined += 2;
        if (!fatal_) {
          fatal_ = true;
          fatal_reason_ =
              "speculative duplicate of shard " +
              shard_label(shard, shard_count_) + " from " +
              transport.name() + " diverged from the accepted artifact "
              "(determinism digest " + fingerprint_hex(digest) + " != " +
              fingerprint_hex(expected_digest) +
              "): worker output is nondeterministic; both artifacts "
              "quarantined";
        }
      }
      if (log_) {
        log_->event("duplicate-mismatch",
                    {DispatchLog::num("shard", shard),
                     DispatchLog::str("worker", transport.name()),
                     DispatchLog::str("digest", fingerprint_hex(digest)),
                     DispatchLog::str("expected",
                                      fingerprint_hex(expected_digest)),
                     DispatchLog::str("duplicate_file",
                                      duplicate_quarantine),
                     DispatchLog::str("winner_file", winner_quarantine)});
      }
      cv_.notify_all();
      continue;  // the loop observes fatal_ and exits
    }

    if (result == Result::kAbandoned) {
      // This attempt lost a speculation race and was canceled (or died on
      // its own) after the shard completed elsewhere. Routine, not a
      // worker failure.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.duplicate_canceled;
      }
      if (log_) {
        log_->event("duplicate-abandoned",
                    {DispatchLog::num("shard", shard),
                     DispatchLog::str("worker", transport.name()),
                     DispatchLog::str("reason", failure)});
      }
      cv_.notify_all();
      if (transport_broken) {
        retired = true;
        break;
      }
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      fail_shard_locked(shard, transport.name(), failure);
    }
    cv_.notify_all();
    ++consecutive_failures;
    if (transport_broken ||
        consecutive_failures >= options_.max_worker_failures) {
      retired = true;
      break;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (retired) {
    ++stats_.retired_workers;
    if (log_) {
      log_->event("worker-retired",
                  {DispatchLog::str("worker", transport.name()),
                   DispatchLog::num("consecutive_failures",
                                    consecutive_failures)});
    }
  }
  --active_workers_;
  if (active_workers_ == 0 && done_count_ < shard_count_ && !fatal_) {
    fatal_ = true;
    fatal_reason_ = "every worker retired with " +
                    std::to_string(shard_count_ - done_count_) +
                    " shard(s) outstanding";
  }
  cv_.notify_all();
}

exp::MergedSweep Dispatcher::run(const exp::SweepPlan& plan,
                                 const DispatchRequest& request,
                                 const Progress& progress) {
  if (!plan.shard.whole()) {
    throw std::invalid_argument(
        "Dispatcher: the plan must be a whole-run plan; the dispatcher "
        "does its own sharding");
  }
  if (request.fingerprint != plan.fingerprint) {
    throw std::invalid_argument(
        "Dispatcher: the request's fingerprint does not match the plan — "
        "the request args would not reproduce this sweep");
  }
  shard_count_ =
      options_.shard_count ? options_.shard_count : workers_.size();
  shards_.assign(shard_count_, Shard{});
  const auto now = std::chrono::steady_clock::now();
  for (Shard& shard : shards_) shard.not_before = now;
  completed_ms_.clear();
  done_count_ = 0;
  fatal_ = false;
  fatal_reason_.clear();
  stats_ = DispatchStats{};
  stats_.shard_count = shard_count_;

  std::filesystem::create_directories(options_.artifact_dir);
  if (log_) {
    log_->event(
        "dispatch",
        {DispatchLog::str("fingerprint", fingerprint_hex(plan.fingerprint)),
         DispatchLog::num("shards", shard_count_),
         DispatchLog::num("workers", workers_.size()),
         DispatchLog::str("resume", options_.resume ? "true" : "false"),
         DispatchLog::str("speculate",
                          options_.speculate ? "true" : "false"),
         DispatchLog::str("artifact_dir", options_.artifact_dir)});
  }

  if (options_.resume) {
    // Resume pre-pass: whatever the artifact directory already holds is
    // re-validated against *this* plan; valid shards are reused, invalid
    // files are quarantined and their shards re-run.
    for (std::size_t s = 0; s < shard_count_; ++s) {
      const std::string path = artifact_path(s);
      if (!std::filesystem::exists(path)) continue;
      std::string problem;
      try {
        const exp::ShardArtifact artifact = exp::load_shard_artifact(path);
        if (artifact.fingerprint != plan.fingerprint) {
          problem = "fingerprint " + fingerprint_hex(artifact.fingerprint) +
                    " does not match plan " +
                    fingerprint_hex(plan.fingerprint);
        } else if (artifact.shard.index != s ||
                   artifact.shard.count != shard_count_) {
          problem =
              "covers shard " +
              shard_label(artifact.shard.index, artifact.shard.count) +
              ", expected " + shard_label(s, shard_count_);
        }
      } catch (const std::exception& e) {
        problem = e.what();
      }
      if (problem.empty()) {
        shards_[s].state = ShardState::kDone;
        ++done_count_;
        ++stats_.resumed;
        if (log_) {
          log_->event("resume-reuse",
                      {DispatchLog::num("shard", s),
                       DispatchLog::str(
                           "file",
                           shard_artifact_filename(s, shard_count_))});
        }
      } else {
        const std::string quarantine = path + ".quarantined-resume";
        std::error_code ec;
        std::filesystem::rename(path, quarantine, ec);
        ++stats_.quarantined;
        if (log_) {
          log_->event("quarantine",
                      {DispatchLog::num("shard", s),
                       DispatchLog::str("worker", "resume-scan"),
                       DispatchLog::str("file", quarantine),
                       DispatchLog::str("reason", problem)});
        }
      }
    }
  }

  if (done_count_ < shard_count_) {
    active_workers_ = workers_.size();
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      threads.emplace_back([this, w, &plan, &request, &progress] {
        worker_loop(w, plan, request, progress);
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (fatal_) {
      if (log_) {
        log_->event("abort", {DispatchLog::str("reason", fatal_reason_)});
      }
      throw std::runtime_error("dispatch failed: " + fatal_reason_);
    }
  }

  std::vector<exp::ShardArtifact> artifacts;
  artifacts.reserve(shard_count_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    artifacts.push_back(exp::load_shard_artifact(artifact_path(s)));
  }
  exp::MergedSweep merged = exp::merge_shard_artifacts(std::move(artifacts));
  if (log_) {
    log_->event(
        "done",
        {DispatchLog::num("shards", shard_count_),
         DispatchLog::num("resumed", stats_.resumed),
         DispatchLog::num("attempts", stats_.attempts),
         DispatchLog::num("failed_attempts", stats_.failed_attempts),
         DispatchLog::num("quarantined", stats_.quarantined),
         DispatchLog::num("speculative", stats_.speculative),
         DispatchLog::num("duplicate_losses", stats_.duplicate_losses)});
  }
  return merged;
}

void write_dispatch_plan_json(std::ostream& out, const exp::SweepPlan& plan,
                              std::size_t shard_count,
                              const std::vector<std::string>& worker_names) {
  if (!plan.shard.whole()) {
    throw std::invalid_argument(
        "write_dispatch_plan_json: the plan must be a whole-run plan");
  }
  if (shard_count == 0) {
    throw std::invalid_argument(
        "write_dispatch_plan_json: shard_count must be >= 1");
  }
  if (worker_names.empty()) {
    throw std::invalid_argument(
        "write_dispatch_plan_json: need at least one worker");
  }
  const std::size_t num_families = plan.num_groups * plan.num_workloads;

  out << "{\n";
  out << "  \"format\": \"fairsched-dispatch-plan\",\n";
  out << "  \"version\": " << kDispatchProtocolVersion << ",\n";
  out << "  \"sweep\": \"" << plan.spec.name << "\",\n";
  out << "  \"fingerprint\": \"" << fingerprint_hex(plan.fingerprint)
      << "\",\n";
  out << "  \"shard_count\": " << shard_count << ",\n";
  out << "  \"workers\": [";
  for (std::size_t w = 0; w < worker_names.size(); ++w) {
    if (w) out << ", ";
    out << '"' << worker_names[w] << '"';
  }
  out << "],\n";
  out << "  \"note\": \"workers are the round-robin seeding only; the "
         "live queue reassigns shards to whichever worker idles first\",\n";
  out << "  \"shards\": [\n";
  for (std::size_t s = 0; s < shard_count; ++s) {
    std::vector<std::size_t> families;
    for (std::size_t f = 0; f < num_families; ++f) {
      if (f % shard_count == s) families.push_back(f);
    }
    std::size_t tasks = 0;
    for (std::size_t t = 0; t < plan.num_tasks; ++t) {
      if (plan.family_of_task(t) % shard_count == s) ++tasks;
    }
    std::size_t cells = 0;
    for (std::size_t c = 0; c < plan.num_cells(); ++c) {
      const std::size_t point = c / (plan.num_workloads * plan.num_policies);
      const std::size_t workload =
          (c / plan.num_policies) % plan.num_workloads;
      const std::size_t family =
          plan.group_of[point] * plan.num_workloads + workload;
      if (family % shard_count == s) ++cells;
    }
    std::string family_key;
    for (const std::size_t f : families) {
      family_key += std::to_string(f) + ",";
    }
    const std::uint64_t shard_fingerprint =
        fnv1a(fingerprint_hex(plan.fingerprint) + " " +
              shard_label(s, shard_count) + " families=" + family_key);
    out << "    {\"shard\": " << s << ", \"worker\": \""
        << worker_names[s % worker_names.size()] << "\", \"artifact\": \""
        << shard_artifact_filename(s, shard_count)
        << "\", \"shard_fingerprint\": \""
        << fingerprint_hex(shard_fingerprint) << "\", \"families\": [";
    for (std::size_t i = 0; i < families.size(); ++i) {
      if (i) out << ", ";
      out << families[i];
    }
    out << "], \"tasks\": " << tasks << ", \"cells\": " << cells << "}"
        << (s + 1 < shard_count ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace fairsched::dist
