#pragma once

// The dispatcher loop of the distributed sweep service.
//
// A Dispatcher takes a whole-run SweepPlan, partitions it into
// `shard_count` shards (the plan layer's family partition, so the merged
// result stays byte-identical to a single-host run — exp/sweep_plan.h),
// and schedules the shards onto its WorkerTransports from one shared
// queue. Scheduling is pull-based work-stealing: every worker thread
// claims the lowest eligible pending shard the moment it goes idle, so a
// straggler host never serializes the run and shards of failed or lost
// workers are simply reclaimed by whichever worker frees up first.
//
// Failure model (docs/DISTRIBUTED.md):
//   * a failed or timed-out attempt re-queues the shard after a capped
//     exponential backoff (backoff * 2^(attempt-1), at most backoff_cap);
//   * a shard that exhausts max_attempts aborts the dispatch;
//   * an artifact that does not parse, or whose fingerprint/shard do not
//     match the plan, is quarantined next to the artifact file — never
//     folded — and counts as a failed attempt;
//   * a worker with max_worker_failures consecutive failures retires; the
//     dispatch aborts only when every worker has retired with shards
//     still outstanding.
//
// Speculative straggler re-execution (options.speculate): when the queue
// is drained (no pending shard at all) and an idle worker finds a shard
// that has been running on a single worker for longer than
// p50 x speculate_factor (p50 over this run's completed attempt
// durations), it re-issues the shard as a duplicate attempt. The first
// valid artifact wins and the losing attempt is canceled
// (WorkerTransport::cancel_inflight). A duplicate that completes anyway
// must match the winner's determinism digest
// (exp::artifact_determinism_digest — wall-clock and cache counters
// excluded); a mismatch means a worker broke the dispatch-determinism
// contract, so both artifacts are quarantined and the dispatch aborts
// loudly. Speculative attempts never count toward max_attempts.
//
// Validated artifacts are persisted to artifact_dir/shard-<i>-of-<N>.json
// (written to a temp name, then renamed, so a killed dispatch never
// leaves a half-written artifact behind). With `resume`, a pre-pass
// re-validates whatever the directory already holds and only missing or
// quarantined shards are executed.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/dispatch_log.h"
#include "dist/protocol.h"
#include "dist/transport.h"
#include "exp/sweep_artifact.h"
#include "exp/sweep_plan.h"

namespace fairsched::dist {

struct DispatchOptions {
  std::size_t shard_count = 0;  // 0 = one shard per worker
  std::chrono::milliseconds shard_timeout{0};  // 0 = unbounded attempts
  std::size_t max_attempts = 3;                // per shard, first included
  std::chrono::milliseconds backoff{250};
  std::chrono::milliseconds backoff_cap{5000};
  std::size_t max_worker_failures = 3;  // consecutive; retires the worker
  std::string artifact_dir;             // required
  bool resume = false;
  bool speculate = false;         // straggler re-execution (header comment)
  double speculate_factor = 2.0;  // duplicate past p50 * factor
};

struct DispatchStats {
  std::size_t shard_count = 0;
  std::size_t resumed = 0;   // shards reused from a previous run
  std::size_t attempts = 0;  // transport attempts, successes included
  std::size_t failed_attempts = 0;
  std::size_t quarantined = 0;
  std::size_t retired_workers = 0;
  std::size_t speculative = 0;        // duplicate attempts launched
  std::size_t duplicate_losses = 0;   // duplicates completed second, identical
  std::size_t duplicate_canceled = 0; // duplicates canceled/failed after a win
};

class Dispatcher {
 public:
  using Progress = std::function<void(const std::string& message)>;

  // `log` is optional and must outlive the dispatcher when given.
  Dispatcher(std::vector<std::unique_ptr<WorkerTransport>> workers,
             DispatchOptions options, DispatchLog* log = nullptr);

  // Dispatches `plan` (must be a whole-run plan matching
  // request.fingerprint; request.shard fields are rewritten per
  // assignment) and folds the shard artifacts. Throws std::runtime_error
  // when a shard exhausts its attempts or every worker retires first.
  exp::MergedSweep run(const exp::SweepPlan& plan,
                       const DispatchRequest& request,
                       const Progress& progress = nullptr);

  const DispatchStats& stats() const { return stats_; }

  // The owned transports, for end-of-dispatch per-worker summary lines
  // (WorkerTransport::summary). Do not call run_shard through this.
  const std::vector<std::unique_ptr<WorkerTransport>>& workers() const {
    return workers_;
  }

 private:
  enum class ShardState { kPending, kRunning, kDone };
  struct Shard {
    ShardState state = ShardState::kPending;
    std::size_t attempts = 0;  // non-speculative attempts (max_attempts gate)
    std::chrono::steady_clock::time_point not_before;  // backoff gate
    std::size_t running = 0;  // attempts in flight (2 while speculating)
    std::vector<std::size_t> running_workers;  // worker indices in flight
    // Start of the oldest in-flight attempt — the straggler clock.
    std::chrono::steady_clock::time_point started;
    bool speculated = false;  // a duplicate was issued this attempt cycle
    std::uint64_t digest = 0;  // determinism digest of the winning artifact
  };

  void worker_loop(std::size_t worker_index, const exp::SweepPlan& plan,
                   const DispatchRequest& request, const Progress& progress);
  // Lowest-index pending shard whose backoff expired; with the queue
  // drained and options_.speculate, a straggler eligible for duplication
  // (*speculative = true). npos when none.
  std::size_t claimable_shard_locked(std::chrono::steady_clock::time_point now,
                                     bool* speculative) const;
  // Median completed-attempt duration; 0 before the first completion.
  double p50_ms_locked() const;
  // Parses and validates an artifact payload against the plan and fills
  // *digest; quarantines and returns a failure detail when it must not be
  // folded, empty on success.
  std::string validate_artifact(const exp::SweepPlan& plan, std::size_t shard,
                                const std::string& payload,
                                const std::string& worker, std::size_t attempt,
                                std::uint64_t* digest);
  // Persists a validated payload (write-then-rename); "" on success.
  std::string write_artifact(std::size_t shard, const std::string& payload);
  void fail_shard_locked(std::size_t shard, const std::string& worker,
                         const std::string& detail);
  std::string artifact_path(std::size_t shard) const;

  std::vector<std::unique_ptr<WorkerTransport>> workers_;
  DispatchOptions options_;
  DispatchLog* log_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Shard> shards_;
  std::vector<double> completed_ms_;  // successful attempt durations
  std::size_t shard_count_ = 0;
  std::size_t done_count_ = 0;
  std::size_t active_workers_ = 0;
  bool fatal_ = false;
  std::string fatal_reason_;
  DispatchStats stats_;
};

// The artifact filename contract shared by dispatch and --resume:
// "shard-<i>-of-<N>.json" under the artifact directory.
std::string shard_artifact_filename(std::size_t shard,
                                    std::size_t shard_count);

// `dispatch --dry-run`: the shard -> worker assignment plan as JSON —
// whole-plan fingerprint, per-shard family/task/cell counts and a
// per-shard fingerprint (FNV-1a over the plan fingerprint and the shard's
// family set), plus the round-robin seeding of shards onto workers. The
// seeding is where execution *starts*; the live queue steals dynamically,
// which is exactly why the output (unlike the assignment) is independent
// of worker speed. Golden-tested.
void write_dispatch_plan_json(std::ostream& out, const exp::SweepPlan& plan,
                              std::size_t shard_count,
                              const std::vector<std::string>& worker_names);

}  // namespace fairsched::dist
