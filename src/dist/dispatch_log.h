#pragma once

// The machine-readable dispatch log: one JSON object per line (JSONL),
// one line per scheduling event, so a partial run can be reconstructed
// from its log alone (docs/DISTRIBUTED.md has the reading guide). Opened
// in append mode by the dispatch scenario: a --resume invocation extends
// the same file and the full history of the run survives.
//
// Every line carries {"event": ..., "t_ms": ...} where t_ms is
// milliseconds since this DispatchLog was constructed (relative, so the
// log stays environment-independent); event-specific fields follow.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace fairsched::dist {

class DispatchLog {
 public:
  // Field values are written as JSON strings unless `raw` — raw values
  // (numbers, booleans) are embedded verbatim.
  struct Field {
    std::string key;
    std::string value;
    bool raw = false;
  };

  // `out` must outlive the log; writes are serialized internally so
  // worker threads log concurrently.
  explicit DispatchLog(std::ostream& out);

  void event(const std::string& name, const std::vector<Field>& fields);

  static Field str(std::string key, std::string value);
  static Field num(std::string key, std::uint64_t value);

 private:
  std::ostream& out_;
  std::mutex mu_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace fairsched::dist
