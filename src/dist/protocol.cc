#include "dist/protocol.h"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fairsched::dist {

namespace {

constexpr const char* kRequestMagic = "fairsched-dispatch-request";
constexpr const char* kArtifactMagic = "fairsched-shard-artifact";
constexpr const char* kHelloMagic = "fairsched-session-hello";
constexpr const char* kGoodbyeMagic = "fairsched-session-goodbye";

void reject_newlines(const std::string& value, const char* what) {
  if (value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos) {
    throw std::invalid_argument(std::string("dispatch protocol: ") + what +
                                " must not contain newlines: '" + value +
                                "'");
  }
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return buf;
}

// One protocol line; EOF mid-frame is always a protocol error.
std::string read_line(std::istream& in, const char* expecting) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument(
        std::string("dispatch protocol: stream ended while expecting ") +
        expecting);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

// Splits a protocol line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(token, &consumed, 10);
    if (consumed != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("dispatch protocol: ") + what +
                                " is not a number: '" + token + "'");
  }
}

std::uint64_t parse_hex_u64(const std::string& token, const char* what) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(token, &consumed, 16);
    if (consumed != token.size() || token.empty()) {
      throw std::invalid_argument(token);
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("dispatch protocol: ") + what +
                                " is not a hex number: '" + token + "'");
  }
}

// Parses a "<magic> <version>" handshake line and returns the peer's
// version. `min_version`/`max_version` bound what this binary folds;
// anything outside throws naming both sides so mixed-binary deployments
// fail comprehensibly.
std::uint64_t check_handshake(const std::string& line, const char* magic,
                              const char* frame, int min_version,
                              int max_version) {
  const std::vector<std::string> tokens = tokens_of(line);
  if (tokens.size() != 2 || tokens[0] != magic) {
    throw std::invalid_argument(std::string("dispatch protocol: expected '") +
                                magic + " " + std::to_string(max_version) +
                                "' handshake for the " + frame + ", got: '" +
                                line + "'");
  }
  const std::uint64_t version = parse_u64(tokens[1], "protocol version");
  if (version < static_cast<std::uint64_t>(min_version) ||
      version > static_cast<std::uint64_t>(max_version)) {
    throw std::invalid_argument(
        std::string("dispatch protocol: peer speaks ") + frame + " v" +
        std::to_string(version) + ", this binary speaks v" +
        std::to_string(min_version) +
        (min_version == max_version
             ? std::string()
             : ".." + std::to_string(max_version)) +
        " — deploy matching fairsched_exp builds on every host");
  }
  return version;
}

void read_payload_bytes(std::istream& in, std::size_t size,
                        std::string& payload, const char* what) {
  payload.resize(size);
  if (size > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(in.gcount()) != size) {
      throw std::invalid_argument(
          std::string("dispatch protocol: truncated ") + what + ": got " +
          std::to_string(static_cast<std::size_t>(in.gcount())) + " of " +
          std::to_string(size) + " bytes");
    }
  }
  // The writer terminates the payload with one newline so the framing
  // stays line-oriented after it.
  const int next = in.get();
  if (next != '\n') {
    throw std::invalid_argument(std::string("dispatch protocol: ") + what +
                                " is not followed by a newline (size "
                                "mismatch between header and payload)");
  }
}

void expect_end(std::istream& in, const char* frame) {
  const std::string line = read_line(in, "'end'");
  if (line != "end") {
    throw std::invalid_argument(std::string("dispatch protocol: expected "
                                            "'end' closing the ") +
                                frame + ", got: '" + line + "'");
  }
}

}  // namespace

void write_dispatch_request(std::ostream& out,
                            const DispatchRequest& request) {
  for (const std::string& arg : request.args) reject_newlines(arg, "arg");
  reject_newlines(request.config_name, "config name");
  out << kRequestMagic << ' ' << kDispatchProtocolVersion << '\n';
  out << "fingerprint " << fingerprint_hex(request.fingerprint) << '\n';
  out << "shard " << request.shard << ' ' << request.shard_count << '\n';
  out << "threads " << request.threads << '\n';
  out << "args " << request.args.size() << '\n';
  for (const std::string& arg : request.args) out << arg << '\n';
  if (request.config_content.empty() && request.config_name.empty()) {
    out << "no-config\n";
  } else {
    out << "config " << request.config_content.size() << ' '
        << (request.config_name.empty() ? "-" : request.config_name) << '\n';
    out.write(request.config_content.data(),
              static_cast<std::streamsize>(request.config_content.size()));
    out << '\n';
  }
  out << "end\n";
}

namespace {

// The request fields after the handshake line; shared by the one-shot
// reader and the session command loop (which consumes the handshake
// itself to tell requests from goodbyes).
DispatchRequest read_dispatch_request_body(std::istream& in) {
  DispatchRequest request;
  std::vector<std::string> tokens =
      tokens_of(read_line(in, "'fingerprint'"));
  if (tokens.size() != 2 || tokens[0] != "fingerprint") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'fingerprint <hex>'");
  }
  request.fingerprint = parse_hex_u64(tokens[1], "fingerprint");

  tokens = tokens_of(read_line(in, "'shard'"));
  if (tokens.size() != 3 || tokens[0] != "shard") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'shard <index> <count>'");
  }
  request.shard =
      static_cast<std::size_t>(parse_u64(tokens[1], "shard index"));
  request.shard_count =
      static_cast<std::size_t>(parse_u64(tokens[2], "shard count"));
  if (request.shard_count == 0 || request.shard >= request.shard_count) {
    throw std::invalid_argument(
        "dispatch protocol: shard index must be < count and count > 0, "
        "got " +
        std::to_string(request.shard) + "/" +
        std::to_string(request.shard_count));
  }

  tokens = tokens_of(read_line(in, "'threads'"));
  if (tokens.size() != 2 || tokens[0] != "threads") {
    throw std::invalid_argument("dispatch protocol: expected 'threads <n>'");
  }
  request.threads =
      static_cast<std::size_t>(parse_u64(tokens[1], "thread count"));

  tokens = tokens_of(read_line(in, "'args'"));
  if (tokens.size() != 2 || tokens[0] != "args") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'args <count>'");
  }
  const std::size_t num_args =
      static_cast<std::size_t>(parse_u64(tokens[1], "arg count"));
  if (num_args == 0) {
    throw std::invalid_argument(
        "dispatch protocol: a request needs at least the subcommand arg");
  }
  request.args.reserve(num_args);
  for (std::size_t i = 0; i < num_args; ++i) {
    // Args are raw lines, not tokenized: flag values may contain spaces.
    request.args.push_back(read_line(in, "an arg line"));
  }

  const std::string config_line = read_line(in, "'config' or 'no-config'");
  if (config_line != "no-config") {
    tokens = tokens_of(config_line);
    if (tokens.size() != 3 || tokens[0] != "config") {
      throw std::invalid_argument(
          "dispatch protocol: expected 'config <bytes> <name>' or "
          "'no-config', got: '" +
          config_line + "'");
    }
    const std::size_t size =
        static_cast<std::size_t>(parse_u64(tokens[1], "config size"));
    request.config_name = tokens[2] == "-" ? "" : tokens[2];
    read_payload_bytes(in, size, request.config_content, "config content");
  }
  expect_end(in, "request");
  return request;
}

}  // namespace

DispatchRequest read_dispatch_request(std::istream& in) {
  check_handshake(read_line(in, "the request handshake"), kRequestMagic,
                  "request", kDispatchProtocolVersion,
                  kDispatchProtocolVersion);
  return read_dispatch_request_body(in);
}

namespace {

void write_artifact_frame_impl(
    std::ostream& out, int version, std::size_t shard,
    std::size_t shard_count, const std::string& payload,
    const std::vector<std::pair<std::string, std::uint64_t>>& stats) {
  out << kArtifactMagic << ' ' << version << '\n';
  out << "shard " << shard << ' ' << shard_count << '\n';
  out << "payload " << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out << '\n';
  for (const auto& [name, value] : stats) {
    reject_newlines(name, "stat name");
    if (name.empty() || name.find(' ') != std::string::npos) {
      throw std::invalid_argument(
          "dispatch protocol: stat names must be single tokens: '" + name +
          "'");
    }
    out << "stat " << name << ' ' << value << '\n';
  }
  out << "end\n";
}

}  // namespace

void write_artifact_frame(std::ostream& out, std::size_t shard,
                          std::size_t shard_count,
                          const std::string& payload) {
  write_artifact_frame_impl(out, kDispatchProtocolVersion, shard,
                            shard_count, payload, {});
}

void write_session_artifact_frame(
    std::ostream& out, std::size_t shard, std::size_t shard_count,
    const std::string& payload,
    const std::vector<std::pair<std::string, std::uint64_t>>& stats) {
  write_artifact_frame_impl(out, kSessionProtocolVersion, shard,
                            shard_count, payload, stats);
}

ArtifactFrame parse_artifact_frame(const std::string& text,
                                   const std::string& source) {
  // Skip banner noise: the frame starts at the first line whose first
  // token is the magic. Everything before it is ignored; everything after
  // is parsed strictly.
  const std::string marker = std::string(kArtifactMagic) + " ";
  std::size_t start = 0;
  if (text.rfind(marker, 0) != 0) {
    const std::size_t found = text.find("\n" + marker);
    if (found == std::string::npos) {
      throw std::invalid_argument(
          "dispatch protocol: no artifact frame in output of " + source +
          " (worker crashed before framing its artifact?)");
    }
    start = found + 1;
  }

  std::istringstream in(text.substr(start));
  ArtifactFrame frame;
  frame.version = static_cast<int>(check_handshake(
      read_line(in, "the artifact handshake"), kArtifactMagic,
      "artifact frame", kDispatchProtocolVersion, kSessionProtocolVersion));
  std::vector<std::string> tokens = tokens_of(read_line(in, "'shard'"));
  if (tokens.size() != 3 || tokens[0] != "shard") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'shard <index> <count>' in artifact "
        "frame from " +
        source);
  }
  frame.shard = static_cast<std::size_t>(parse_u64(tokens[1], "shard index"));
  frame.shard_count =
      static_cast<std::size_t>(parse_u64(tokens[2], "shard count"));

  tokens = tokens_of(read_line(in, "'payload'"));
  if (tokens.size() != 2 || tokens[0] != "payload") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'payload <bytes>' in artifact frame "
        "from " +
        source);
  }
  const std::size_t size =
      static_cast<std::size_t>(parse_u64(tokens[1], "payload size"));
  read_payload_bytes(in, size, frame.payload, "artifact payload");
  if (frame.version >= kSessionProtocolVersion) {
    // v2 footer: zero or more `stat <name> <value>` lines before `end`.
    for (;;) {
      const std::string line = read_line(in, "'stat' or 'end'");
      if (line == "end") return frame;
      tokens = tokens_of(line);
      if (tokens.size() != 3 || tokens[0] != "stat") {
        throw std::invalid_argument(
            "dispatch protocol: expected 'stat <name> <value>' or 'end' in "
            "artifact frame from " +
            source + ", got: '" + line + "'");
      }
      frame.stats.emplace_back(tokens[1],
                               parse_u64(tokens[2], "stat value"));
    }
  }
  expect_end(in, "artifact frame");
  return frame;
}

void write_session_hello(std::ostream& out, const SessionHello& hello) {
  out << kHelloMagic << ' ' << kSessionProtocolVersion << '\n';
  out << "threads " << hello.threads << '\n';
  out << "end\n";
}

SessionHello read_session_hello(std::istream& in) {
  check_handshake(read_line(in, "the session hello handshake"), kHelloMagic,
                  "session hello", kSessionProtocolVersion,
                  kSessionProtocolVersion);
  SessionHello hello;
  const std::vector<std::string> tokens =
      tokens_of(read_line(in, "'threads'"));
  if (tokens.size() != 2 || tokens[0] != "threads") {
    throw std::invalid_argument(
        "dispatch protocol: expected 'threads <n>' in session hello");
  }
  hello.threads =
      static_cast<std::size_t>(parse_u64(tokens[1], "hello thread count"));
  expect_end(in, "session hello");
  return hello;
}

void write_session_goodbye(std::ostream& out) {
  out << kGoodbyeMagic << ' ' << kSessionProtocolVersion << '\n';
  out << "end\n";
}

SessionCommand read_session_command(std::istream& in,
                                    DispatchRequest* request) {
  std::string line;
  if (!std::getline(in, line)) return SessionCommand::kEof;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> tokens = tokens_of(line);
  if (!tokens.empty() && tokens[0] == kGoodbyeMagic) {
    check_handshake(line, kGoodbyeMagic, "session goodbye",
                    kSessionProtocolVersion, kSessionProtocolVersion);
    expect_end(in, "session goodbye");
    return SessionCommand::kGoodbye;
  }
  check_handshake(line, kRequestMagic, "request", kDispatchProtocolVersion,
                  kDispatchProtocolVersion);
  *request = read_dispatch_request_body(in);
  return SessionCommand::kRequest;
}

bool scan_session_frame(const std::string& buffer, std::size_t start,
                        std::size_t* extent) {
  std::size_t pos = start;
  while (true) {
    const std::size_t eol = buffer.find('\n', pos);
    if (eol == std::string::npos) return false;  // partial line
    const std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 1;
    if (line == "end" || line == "end\r") {
      *extent = pos;
      return true;
    }
    // Length-prefixed payloads ("payload <n>", "config <n> <name>") are
    // skipped by size so their bytes never masquerade as protocol lines.
    const std::vector<std::string> tokens = tokens_of(line);
    if (!tokens.empty() && (tokens[0] == "payload" || tokens[0] == "config") &&
        tokens.size() >= 2) {
      std::size_t size = 0;
      try {
        size = static_cast<std::size_t>(
            parse_u64(tokens[1], "scanned payload size"));
      } catch (const std::invalid_argument&) {
        continue;  // not a real size header; strict parse will reject it
      }
      if (buffer.size() - pos < size + 1) return false;  // bytes + '\n'
      pos += size + 1;
    }
  }
}

}  // namespace fairsched::dist
