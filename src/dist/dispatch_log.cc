#include "dist/dispatch_log.h"

#include <ostream>

#include "util/json.h"

namespace fairsched::dist {

DispatchLog::DispatchLog(std::ostream& out)
    : out_(out), started_(std::chrono::steady_clock::now()) {}

DispatchLog::Field DispatchLog::str(std::string key, std::string value) {
  return Field{std::move(key), std::move(value), false};
}

DispatchLog::Field DispatchLog::num(std::string key, std::uint64_t value) {
  return Field{std::move(key), std::to_string(value), true};
}

void DispatchLog::event(const std::string& name,
                        const std::vector<Field>& fields) {
  const auto t_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started_)
                        .count();
  std::lock_guard<std::mutex> lock(mu_);
  out_ << "{\"event\":\"" << json_escape(name) << "\",\"t_ms\":" << t_ms;
  for (const Field& field : fields) {
    out_ << ",\"" << json_escape(field.key) << "\":";
    if (field.raw) {
      out_ << field.value;
    } else {
      out_ << '"' << json_escape(field.value) << '"';
    }
  }
  out_ << "}\n";
  out_.flush();  // each line must survive a killed dispatch (--resume)
}

}  // namespace fairsched::dist
