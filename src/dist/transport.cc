#include "dist/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace fairsched::dist {

namespace {

// A worker dying mid-request must surface as a write error on its stdin
// pipe, not kill the dispatcher with SIGPIPE.
void ignore_sigpipe_once() {
  static const int ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)ignored;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string exit_description(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status " + std::to_string(status);
}

std::string argv_description(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& arg : argv) {
    if (!out.empty()) out += ' ';
    out += arg;
  }
  return out;
}

// fork/exec with stdin/stdout pipes (stderr inherited). Returns the pid
// and the dispatcher-side fds (both nonblocking), or -1 on fork failure.
pid_t spawn_worker(const std::vector<std::string>& argv, int* in_fd,
                   int* out_fd) {
  int in_pipe[2];   // dispatcher -> worker stdin
  int out_pipe[2];  // worker stdout -> dispatcher
  if (::pipe(in_pipe) < 0 || ::pipe(out_pipe) < 0) {
    throw std::runtime_error("spawn_worker: pipe() failed");
  }
  std::vector<std::string> args = argv;
  std::vector<char*> exec_argv;
  exec_argv.reserve(args.size() + 1);
  for (std::string& arg : args) exec_argv.push_back(arg.data());
  exec_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return -1;
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execvp(exec_argv[0], exec_argv.data());
    std::perror("execvp");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  *in_fd = in_pipe[1];
  *out_fd = out_pipe[0];
  set_nonblocking(*in_fd);
  set_nonblocking(*out_fd);
  return pid;
}

// Offset of the first session frame in `buffer`: the earliest position
// (start of buffer or of a line) where a known frame magic begins. npos
// when none is visible yet — ssh banner noise may still be streaming in.
std::size_t first_frame_offset(const std::string& buffer) {
  static const char* kMagics[] = {"fairsched-session-hello ",
                                  "fairsched-shard-artifact "};
  std::size_t best = std::string::npos;
  for (const char* magic : kMagics) {
    if (buffer.rfind(magic, 0) == 0) return 0;
    const std::size_t found = buffer.find(std::string("\n") + magic);
    if (found != std::string::npos) best = std::min(best, found + 1);
  }
  return best;
}

}  // namespace

WorkerTransport::Outcome run_worker_process(
    const std::vector<std::string>& argv, const DispatchRequest& request,
    std::chrono::milliseconds timeout) {
  using Outcome = WorkerTransport::Outcome;
  if (argv.empty()) {
    throw std::invalid_argument("run_worker_process: empty argv");
  }
  ignore_sigpipe_once();

  std::ostringstream request_stream;
  write_dispatch_request(request_stream, request);
  const std::string request_bytes = request_stream.str();

  int in_pipe[2];   // dispatcher -> worker stdin
  int out_pipe[2];  // worker stdout -> dispatcher
  if (::pipe(in_pipe) < 0 || ::pipe(out_pipe) < 0) {
    throw std::runtime_error("run_worker_process: pipe() failed");
  }

  std::vector<std::string> args = argv;
  std::vector<char*> exec_argv;
  exec_argv.reserve(args.size() + 1);
  for (std::string& arg : args) exec_argv.push_back(arg.data());
  exec_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    throw std::runtime_error("run_worker_process: fork() failed");
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execvp(exec_argv[0], exec_argv.data());
    std::perror("execvp");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  const int write_fd = in_pipe[1];
  const int read_fd = out_pipe[0];
  set_nonblocking(write_fd);
  set_nonblocking(read_fd);

  const auto started = std::chrono::steady_clock::now();
  const bool bounded = timeout.count() > 0;
  const auto deadline = started + timeout;

  // One poll loop drives both directions so a worker that starts writing
  // before it has drained its stdin cannot deadlock against us.
  std::string output;
  std::size_t written = 0;
  bool write_open = true;
  bool read_open = true;
  bool timed_out = false;
  char buffer[65536];
  while (read_open) {
    if (write_open && written == request_bytes.size()) {
      ::close(write_fd);
      write_open = false;
    }
    struct pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds].fd = read_fd;
    fds[nfds].events = POLLIN;
    ++nfds;
    if (write_open) {
      fds[nfds].fd = write_fd;
      fds[nfds].events = POLLOUT;
      ++nfds;
    }
    int wait_ms = -1;
    if (bounded) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0,
                                                        remaining.count()));
    }
    const int ready = ::poll(fds, nfds, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {  // deadline expired
      timed_out = true;
      break;
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::read(read_fd, buffer, sizeof(buffer));
      if (n > 0) {
        output.append(buffer, static_cast<std::size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        read_open = false;
      }
    }
    if (write_open && nfds > 1 &&
        (fds[1].revents & (POLLOUT | POLLHUP | POLLERR))) {
      const ssize_t n = ::write(write_fd, request_bytes.data() + written,
                                request_bytes.size() - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EINTR) {
        // Worker closed stdin early (possibly dying); its exit status or
        // missing frame reports the failure.
        ::close(write_fd);
        write_open = false;
      }
    }
  }
  if (write_open) ::close(write_fd);
  ::close(read_fd);

  const std::string source =
      "worker process `" + argv_description(argv) + "`";
  if (timed_out) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return Outcome{Outcome::Status::kTimeout, "",
                   source + " exceeded the " +
                       std::to_string(timeout.count()) +
                       "ms shard timeout and was killed"};
  }

  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return Outcome{Outcome::Status::kFailed, "",
                   source + ": waitpid failed"};
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return Outcome{Outcome::Status::kFailed, "",
                   source + " failed (" + exit_description(status) + ")"};
  }

  try {
    ArtifactFrame frame = parse_artifact_frame(output, source);
    if (frame.shard != request.shard ||
        frame.shard_count != request.shard_count) {
      return Outcome{Outcome::Status::kFailed, "",
                     source + " returned shard " +
                         std::to_string(frame.shard) + "/" +
                         std::to_string(frame.shard_count) +
                         " but was asked for " +
                         std::to_string(request.shard) + "/" +
                         std::to_string(request.shard_count)};
    }
    return Outcome{Outcome::Status::kArtifact, std::move(frame.payload),
                   ""};
  } catch (const std::exception& e) {
    return Outcome{Outcome::Status::kFailed, "", e.what()};
  }
}

LocalProcessTransport::LocalProcessTransport(std::string name,
                                             std::string program)
    : name_(std::move(name)), program_(std::move(program)) {
  if (program_.empty()) {
    throw std::invalid_argument(
        "LocalProcessTransport: empty program path");
  }
}

WorkerTransport::Outcome LocalProcessTransport::run_shard(
    const DispatchRequest& request, std::chrono::milliseconds timeout) {
  ++attempts_;
  return run_worker_process({program_, "shard-worker"}, request, timeout);
}

std::string LocalProcessTransport::summary() const {
  return std::to_string(attempts_) + " attempt(s), spawn-per-attempt";
}

SshTransport::SshTransport(std::string name,
                           std::vector<std::string> ssh_command,
                           std::string host, std::string remote_program)
    : name_(std::move(name)) {
  if (ssh_command.empty()) {
    throw std::invalid_argument("SshTransport: empty ssh command");
  }
  if (host.empty()) {
    throw std::invalid_argument("SshTransport: empty host");
  }
  if (remote_program.empty()) {
    throw std::invalid_argument("SshTransport: empty remote program path");
  }
  argv_ = std::move(ssh_command);
  argv_.push_back(std::move(host));
  // ssh joins the remaining tokens with spaces for the remote shell, so
  // remote program paths must not contain shell metacharacters; the fake
  // ssh harness receives them as separate argv entries either way.
  argv_.push_back(std::move(remote_program));
  argv_.push_back("shard-worker");
}

WorkerTransport::Outcome SshTransport::run_shard(
    const DispatchRequest& request, std::chrono::milliseconds timeout) {
  ++attempts_;
  return run_worker_process(argv_, request, timeout);
}

std::string SshTransport::summary() const {
  return std::to_string(attempts_) + " attempt(s), spawn-per-attempt";
}

PersistentTransport::PersistentTransport(
    std::string name, std::vector<std::string> session_argv,
    std::vector<std::string> fallback_argv, DispatchLog* log)
    : name_(std::move(name)),
      session_argv_(std::move(session_argv)),
      fallback_argv_(std::move(fallback_argv)),
      log_(log) {
  if (session_argv_.empty() || fallback_argv_.empty()) {
    throw std::invalid_argument("PersistentTransport: empty argv");
  }
}

PersistentTransport::~PersistentTransport() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pid_ < 0) return;
  if (in_fd_ >= 0) {
    // Polite shutdown: ask the worker to exit on its own before reaping.
    std::ostringstream bye;
    write_session_goodbye(bye);
    const std::string bytes = bye.str();
    const ssize_t ignored = ::write(in_fd_, bytes.data(), bytes.size());
    (void)ignored;
    ::close(in_fd_);
    in_fd_ = -1;
  }
  if (out_fd_ >= 0) {
    ::close(out_fd_);
    out_fd_ = -1;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (::waitpid(pid_, nullptr, WNOHANG) == 0) {
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      break;
    }
    ::usleep(10 * 1000);
  }
  pid_ = -1;
}

bool PersistentTransport::open_session_locked(std::string* error) {
  int in_fd = -1;
  int out_fd = -1;
  const pid_t pid = spawn_worker(session_argv_, &in_fd, &out_fd);
  if (pid < 0) {
    *error = "fork() failed spawning session worker `" +
             argv_description(session_argv_) + "`";
    return false;
  }
  pid_ = pid;
  in_fd_ = in_fd;
  out_fd_ = out_fd;
  buffer_.clear();
  hello_seen_ = false;
  ++stats_.opens;
  if (log_) {
    log_->event("session-open",
                {DispatchLog::str("worker", name_),
                 DispatchLog::num("pid", static_cast<std::uint64_t>(pid)),
                 DispatchLog::num("opens", stats_.opens)});
  }
  return true;
}

void PersistentTransport::teardown_locked(const char* reason,
                                          bool kill_child) {
  if (pid_ < 0) return;
  if (in_fd_ >= 0) ::close(in_fd_);
  if (out_fd_ >= 0) ::close(out_fd_);
  in_fd_ = -1;
  out_fd_ = -1;
  if (kill_child) ::kill(pid_, SIGKILL);
  ::waitpid(pid_, nullptr, 0);
  if (log_) {
    log_->event("session-close", {DispatchLog::str("worker", name_),
                                  DispatchLog::str("reason", reason)});
  }
  pid_ = -1;
  buffer_.clear();
  hello_seen_ = false;
}

WorkerTransport::Outcome PersistentTransport::run_shard(
    const DispatchRequest& request, std::chrono::milliseconds timeout) {
  using Outcome = WorkerTransport::Outcome;
  ignore_sigpipe_once();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (v1_peer_) {
      ++stats_.fallback;
    }
  }
  if (session_stats().v1_peer) {
    return run_worker_process(fallback_argv_, request, timeout);
  }

  const auto started = std::chrono::steady_clock::now();
  const bool bounded = timeout.count() > 0;
  const auto deadline = started + timeout;
  const std::string source = "session worker `" +
                             argv_description(session_argv_) + "` (" +
                             name_ + ")";

  int in_fd = -1;
  int out_fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_requested_ = false;
    if (pid_ < 0) {
      std::string error;
      if (!open_session_locked(&error)) {
        return Outcome{Outcome::Status::kFailed, "", error};
      }
    } else if (log_) {
      log_->event("session-reuse",
                  {DispatchLog::str("worker", name_),
                   DispatchLog::num("served", stats_.served)});
    }
    inflight_ = true;
    in_fd = in_fd_;
    out_fd = out_fd_;
  }
  // Clears inflight_ on every return path so cancel_inflight never kills
  // an idle session.
  auto finish = [this](Outcome outcome) {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = false;
    return outcome;
  };

  std::ostringstream request_stream;
  write_dispatch_request(request_stream, request);
  const std::string request_bytes = request_stream.str();
  std::size_t written = 0;
  bool write_failed = false;
  bool eof = false;
  char chunk[65536];

  while (true) {
    // Consume every complete frame already buffered before blocking again.
    for (;;) {
      bool hello_pending;
      {
        std::lock_guard<std::mutex> lock(mu_);
        hello_pending = !hello_seen_;
      }
      if (hello_pending) {
        // Tolerate ssh banner noise before the first frame of a session:
        // drop bytes up to the first recognizable frame magic.
        const std::size_t start = first_frame_offset(buffer_);
        if (start == std::string::npos) break;
        if (start > 0) buffer_.erase(0, start);
      }
      std::size_t extent = 0;
      bool complete = false;
      try {
        complete = scan_session_frame(buffer_, 0, &extent);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        teardown_locked("malformed frame", true);
        inflight_ = false;
        return Outcome{Outcome::Status::kFailed, "",
                       source + ": " + e.what()};
      }
      if (!complete) break;
      const std::string frame_text = buffer_.substr(0, extent);
      buffer_.erase(0, extent);

      if (frame_text.rfind("fairsched-session-hello ", 0) == 0) {
        try {
          std::istringstream frame_in(frame_text);
          const SessionHello hello = read_session_hello(frame_in);
          std::size_t opens = 0;
          {
            std::lock_guard<std::mutex> lock(mu_);
            hello_seen_ = true;
            stats_.hello_threads = hello.threads;
            opens = stats_.opens;
          }
          if (log_) {
            log_->event("session-hello",
                        {DispatchLog::str("worker", name_),
                         DispatchLog::num("threads", hello.threads),
                         DispatchLog::num("opens", opens)});
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(mu_);
          teardown_locked("bad hello", true);
          inflight_ = false;
          return Outcome{Outcome::Status::kFailed, "",
                         source + ": " + e.what()};
        }
        continue;
      }

      try {
        ArtifactFrame frame = parse_artifact_frame(frame_text, source);
        bool v1_detected = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!hello_seen_) {
            // Binary skew: a v1 worker parses the request but never sends
            // a session hello, answers one artifact, and exits. Use the
            // artifact; later attempts spawn per attempt.
            v1_peer_ = true;
            stats_.v1_peer = true;
            ++stats_.fallback;
            v1_detected = true;
          } else {
            ++stats_.served;
            for (const auto& [stat_name, value] : frame.stats) {
              if (stat_name == "cache_hits") stats_.cache_hits += value;
              if (stat_name == "cache_misses") stats_.cache_misses += value;
              if (stat_name == "disk_hits") stats_.disk_hits += value;
              if (stat_name == "replayed") stats_.replayed += value;
            }
          }
        }
        if (v1_detected) {
          if (log_) {
            log_->event("session-v1-fallback",
                        {DispatchLog::str("worker", name_)});
          }
          std::lock_guard<std::mutex> lock(mu_);
          teardown_locked("v1 peer (no session hello)", false);
        }
        if (frame.shard != request.shard ||
            frame.shard_count != request.shard_count) {
          std::lock_guard<std::mutex> lock(mu_);
          teardown_locked("shard echo mismatch", true);
          inflight_ = false;
          return Outcome{Outcome::Status::kFailed, "",
                         source + " returned shard " +
                             std::to_string(frame.shard) + "/" +
                             std::to_string(frame.shard_count) +
                             " but was asked for " +
                             std::to_string(request.shard) + "/" +
                             std::to_string(request.shard_count)};
        }
        return finish(Outcome{Outcome::Status::kArtifact,
                              std::move(frame.payload), ""});
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        teardown_locked("bad artifact frame", true);
        inflight_ = false;
        return Outcome{Outcome::Status::kFailed, "",
                       source + ": " + e.what()};
      }
    }

    if (eof) {
      std::lock_guard<std::mutex> lock(mu_);
      const bool canceled = cancel_requested_;
      teardown_locked(canceled ? "canceled" : "eof", true);
      inflight_ = false;
      if (canceled) {
        return Outcome{Outcome::Status::kFailed, "",
                       source + " canceled (losing speculative duplicate)"};
      }
      return Outcome{Outcome::Status::kFailed, "",
                     source + " session ended before an artifact frame"};
    }

    struct pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds].fd = out_fd;
    fds[nfds].events = POLLIN;
    ++nfds;
    const bool want_write = !write_failed && written < request_bytes.size();
    if (want_write) {
      fds[nfds].fd = in_fd;
      fds[nfds].events = POLLOUT;
      ++nfds;
    }
    int wait_ms = -1;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      wait_ms =
          static_cast<int>(std::max<std::int64_t>(0, remaining.count()));
    }
    const int ready = ::poll(fds, nfds, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> lock(mu_);
      teardown_locked("poll failed", true);
      inflight_ = false;
      return Outcome{Outcome::Status::kFailed, "",
                     source + ": poll failed (" +
                         std::string(std::strerror(errno)) + ")"};
    }
    if (ready == 0) {  // deadline expired
      std::lock_guard<std::mutex> lock(mu_);
      teardown_locked("shard timeout", true);
      inflight_ = false;
      return Outcome{Outcome::Status::kTimeout, "",
                     source + " exceeded the " +
                         std::to_string(timeout.count()) +
                         "ms shard timeout; session killed (respawns on "
                         "the next attempt)"};
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::read(out_fd, chunk, sizeof(chunk));
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        // The frame-extraction pass at the top of the loop still gets one
        // look at whatever is buffered before the eof branch fires.
        eof = true;
      }
    }
    if (want_write && nfds > 1 &&
        (fds[1].revents & (POLLOUT | POLLHUP | POLLERR))) {
      const ssize_t n = ::write(in_fd, request_bytes.data() + written,
                                request_bytes.size() - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EINTR) {
        // Worker closed its stdin (dying); the read side reports the
        // failure.
        write_failed = true;
      }
    }
  }
}

void PersistentTransport::cancel_inflight() {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ && pid_ > 0) {
    cancel_requested_ = true;
    ::kill(pid_, SIGKILL);
  }
}

std::string PersistentTransport::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  if (stats_.v1_peer) {
    out << "v1 peer (no session support): " << stats_.fallback
        << " shard(s) spawn-per-attempt";
    return out.str();
  }
  out << stats_.served << " shard(s) over " << stats_.opens
      << " session(s), cache " << stats_.cache_hits << " hit(s) / "
      << stats_.cache_misses << " miss(es)";
  if (stats_.disk_hits > 0) {
    out << " (" << stats_.disk_hits << " from disk)";
  }
  if (stats_.replayed > 0) {
    out << ", " << stats_.replayed << " replayed run(s)";
  }
  if (stats_.hello_threads > 0) {
    out << ", hw threads " << stats_.hello_threads;
  }
  return out.str();
}

PersistentTransport::SessionStats PersistentTransport::session_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PersistentTransport::hello_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.hello_threads;
}

}  // namespace fairsched::dist
