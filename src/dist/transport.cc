#include "dist/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace fairsched::dist {

namespace {

// A worker dying mid-request must surface as a write error on its stdin
// pipe, not kill the dispatcher with SIGPIPE.
void ignore_sigpipe_once() {
  static const int ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)ignored;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string exit_description(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status " + std::to_string(status);
}

std::string argv_description(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& arg : argv) {
    if (!out.empty()) out += ' ';
    out += arg;
  }
  return out;
}

}  // namespace

WorkerTransport::Outcome run_worker_process(
    const std::vector<std::string>& argv, const DispatchRequest& request,
    std::chrono::milliseconds timeout) {
  using Outcome = WorkerTransport::Outcome;
  if (argv.empty()) {
    throw std::invalid_argument("run_worker_process: empty argv");
  }
  ignore_sigpipe_once();

  std::ostringstream request_stream;
  write_dispatch_request(request_stream, request);
  const std::string request_bytes = request_stream.str();

  int in_pipe[2];   // dispatcher -> worker stdin
  int out_pipe[2];  // worker stdout -> dispatcher
  if (::pipe(in_pipe) < 0 || ::pipe(out_pipe) < 0) {
    throw std::runtime_error("run_worker_process: pipe() failed");
  }

  std::vector<std::string> args = argv;
  std::vector<char*> exec_argv;
  exec_argv.reserve(args.size() + 1);
  for (std::string& arg : args) exec_argv.push_back(arg.data());
  exec_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    throw std::runtime_error("run_worker_process: fork() failed");
  }
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execvp(exec_argv[0], exec_argv.data());
    std::perror("execvp");
    ::_exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  const int write_fd = in_pipe[1];
  const int read_fd = out_pipe[0];
  set_nonblocking(write_fd);
  set_nonblocking(read_fd);

  const auto started = std::chrono::steady_clock::now();
  const bool bounded = timeout.count() > 0;
  const auto deadline = started + timeout;

  // One poll loop drives both directions so a worker that starts writing
  // before it has drained its stdin cannot deadlock against us.
  std::string output;
  std::size_t written = 0;
  bool write_open = true;
  bool read_open = true;
  bool timed_out = false;
  char buffer[65536];
  while (read_open) {
    if (write_open && written == request_bytes.size()) {
      ::close(write_fd);
      write_open = false;
    }
    struct pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds].fd = read_fd;
    fds[nfds].events = POLLIN;
    ++nfds;
    if (write_open) {
      fds[nfds].fd = write_fd;
      fds[nfds].events = POLLOUT;
      ++nfds;
    }
    int wait_ms = -1;
    if (bounded) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0,
                                                        remaining.count()));
    }
    const int ready = ::poll(fds, nfds, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {  // deadline expired
      timed_out = true;
      break;
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::read(read_fd, buffer, sizeof(buffer));
      if (n > 0) {
        output.append(buffer, static_cast<std::size_t>(n));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        read_open = false;
      }
    }
    if (write_open && nfds > 1 &&
        (fds[1].revents & (POLLOUT | POLLHUP | POLLERR))) {
      const ssize_t n = ::write(write_fd, request_bytes.data() + written,
                                request_bytes.size() - written);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
      } else if (n < 0 && errno != EAGAIN && errno != EINTR) {
        // Worker closed stdin early (possibly dying); its exit status or
        // missing frame reports the failure.
        ::close(write_fd);
        write_open = false;
      }
    }
  }
  if (write_open) ::close(write_fd);
  ::close(read_fd);

  const std::string source =
      "worker process `" + argv_description(argv) + "`";
  if (timed_out) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return Outcome{Outcome::Status::kTimeout, "",
                   source + " exceeded the " +
                       std::to_string(timeout.count()) +
                       "ms shard timeout and was killed"};
  }

  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    return Outcome{Outcome::Status::kFailed, "",
                   source + ": waitpid failed"};
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return Outcome{Outcome::Status::kFailed, "",
                   source + " failed (" + exit_description(status) + ")"};
  }

  try {
    ArtifactFrame frame = parse_artifact_frame(output, source);
    if (frame.shard != request.shard ||
        frame.shard_count != request.shard_count) {
      return Outcome{Outcome::Status::kFailed, "",
                     source + " returned shard " +
                         std::to_string(frame.shard) + "/" +
                         std::to_string(frame.shard_count) +
                         " but was asked for " +
                         std::to_string(request.shard) + "/" +
                         std::to_string(request.shard_count)};
    }
    return Outcome{Outcome::Status::kArtifact, std::move(frame.payload),
                   ""};
  } catch (const std::exception& e) {
    return Outcome{Outcome::Status::kFailed, "", e.what()};
  }
}

LocalProcessTransport::LocalProcessTransport(std::string name,
                                             std::string program)
    : name_(std::move(name)), program_(std::move(program)) {
  if (program_.empty()) {
    throw std::invalid_argument(
        "LocalProcessTransport: empty program path");
  }
}

WorkerTransport::Outcome LocalProcessTransport::run_shard(
    const DispatchRequest& request, std::chrono::milliseconds timeout) {
  return run_worker_process({program_, "shard-worker"}, request, timeout);
}

SshTransport::SshTransport(std::string name,
                           std::vector<std::string> ssh_command,
                           std::string host, std::string remote_program)
    : name_(std::move(name)) {
  if (ssh_command.empty()) {
    throw std::invalid_argument("SshTransport: empty ssh command");
  }
  if (host.empty()) {
    throw std::invalid_argument("SshTransport: empty host");
  }
  if (remote_program.empty()) {
    throw std::invalid_argument("SshTransport: empty remote program path");
  }
  argv_ = std::move(ssh_command);
  argv_.push_back(std::move(host));
  // ssh joins the remaining tokens with spaces for the remote shell, so
  // remote program paths must not contain shell metacharacters; the fake
  // ssh harness receives them as separate argv entries either way.
  argv_.push_back(std::move(remote_program));
  argv_.push_back("shard-worker");
}

WorkerTransport::Outcome SshTransport::run_shard(
    const DispatchRequest& request, std::chrono::milliseconds timeout) {
  return run_worker_process(argv_, request, timeout);
}

}  // namespace fairsched::dist
