#pragma once

// The dispatcher <-> shard-worker wire protocol (docs/DISTRIBUTED.md).
//
// A dispatch sends each worker one DispatchRequest on stdin and reads one
// framed shard artifact back on stdout. The request does NOT carry the
// plan JSON: a spec reconstructed from its summary is reporting-only
// (exp/sweep_plan.h) and cannot be re-executed. Instead the request
// carries the argv tokens that rebuild the sweep — the subcommand plus
// the original flags, minus orchestration/reporting flags — and, so
// remote hosts need no shared filesystem, the raw bytes of the --config
// file when one was given. The worker rebuilds the spec, builds its
// shard's plan, and refuses to run unless the rebuilt plan's fingerprint
// equals the request's: the merge contract's fingerprint check, moved
// before any compute is spent.
//
// Every frame opens with a `<magic> <version>` handshake line so a
// version skew between dispatcher and worker binaries fails with a
// message naming both versions instead of a parse error mid-stream.
// Framing is line-oriented except for the two length-prefixed byte
// payloads (config content in, artifact JSON out), which are copied
// verbatim.
//
// Protocol v2 adds *sessions* (docs/DISTRIBUTED.md): one long-lived
// `shard-worker --session` process serves many requests over a single
// stdin/stdout connection. The session worker opens with a hello frame
// (carrying its hardware concurrency), then loops request -> artifact;
// the dispatcher closes with a goodbye frame (or just EOF). Request
// frames keep the v1 format — that is the v1-fallback seam: a skewed v1
// worker parses the first request, answers with a v1 artifact frame and
// exits, and the dispatcher detects the missing hello and falls back to
// spawn-per-attempt for that worker. Session artifact frames use
// version 2 and may carry a `stat <name> <value>` footer (cache
// counters, task counts) between the payload and `end`.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace fairsched::dist {

inline constexpr int kDispatchProtocolVersion = 1;
// Session frames (hello/goodbye) and artifact frames with a stat footer.
inline constexpr int kSessionProtocolVersion = 2;

// Everything a shard-worker needs to reproduce one shard of a sweep.
struct DispatchRequest {
  // Whole-plan fingerprint (exp/sweep_plan.h) the worker must reproduce.
  std::uint64_t fingerprint = 0;
  // The shard this attempt executes; the dispatcher rewrites these per
  // assignment, the rest of the request is shared by every attempt.
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  // Worker thread budget (0 = the worker's hardware concurrency).
  std::size_t threads = 0;
  // Subcommand + flags rebuilding the sweep (no newlines allowed; the
  // framing is line-oriented). args[0] is the scenario name ("custom",
  // "table1", ...), the rest are --flag tokens.
  std::vector<std::string> args;
  // Embedded sweep config file: when non-empty the worker writes
  // `config_content` to a scratch file and appends --config=<path> to
  // args. `config_name` is display-only (log/error messages).
  std::string config_name;
  std::string config_content;
};

// Serializes `request`. Throws std::invalid_argument when an arg or the
// config name contains a newline (unrepresentable in the framing).
void write_dispatch_request(std::ostream& out, const DispatchRequest& request);

// Parses one request from `in`. Throws std::invalid_argument on a missing
// or mis-versioned handshake, truncated input, or malformed fields.
DispatchRequest read_dispatch_request(std::istream& in);

// The worker's reply: its shard identity plus the artifact JSON bytes
// (exp/sweep_artifact.h), length-prefixed so the payload is copied
// verbatim whatever it contains. Version 2 frames (sessions) may carry a
// footer of `stat <name> <value>` counters — per-request accounting the
// dispatcher surfaces in per-worker summaries without parsing the
// payload.
struct ArtifactFrame {
  int version = kDispatchProtocolVersion;
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  std::string payload;  // shard artifact JSON
  std::vector<std::pair<std::string, std::uint64_t>> stats;  // v2 footer
};

void write_artifact_frame(std::ostream& out, std::size_t shard,
                          std::size_t shard_count, const std::string& payload);

// The v2 form: same frame plus the stat footer. Stat names must be
// single whitespace-free tokens.
void write_session_artifact_frame(
    std::ostream& out, std::size_t shard, std::size_t shard_count,
    const std::string& payload,
    const std::vector<std::pair<std::string, std::uint64_t>>& stats);

// Parses the artifact frame out of a worker's captured stdout. Tolerates
// noise *before* the handshake line (ssh banners, motd leakage) but is
// strict from the handshake on. Accepts versions 1 and 2 (the dispatcher
// folds both); throws std::invalid_argument when no frame is found, the
// version is something else, or the payload is truncated.
ArtifactFrame parse_artifact_frame(const std::string& text,
                                   const std::string& source);

// ---- session frames (protocol v2) ----------------------------------------

// The session worker's opening frame: what the dispatcher must know
// before assigning work. `threads` is the worker's hardware concurrency,
// the default budget for remote sessions dispatched without an explicit
// --worker-threads.
struct SessionHello {
  std::size_t threads = 0;
};

void write_session_hello(std::ostream& out, const SessionHello& hello);
SessionHello read_session_hello(std::istream& in);

// The dispatcher's closing frame; a session worker exits cleanly on it
// (or on plain EOF, which a killed dispatcher leaves behind).
void write_session_goodbye(std::ostream& out);

// The worker side of a session: reads the next dispatcher -> worker
// frame from `in`. kRequest fills *request; kGoodbye was a clean close;
// kEof is the dispatcher vanishing before one. Malformed frames throw.
enum class SessionCommand { kRequest, kGoodbye, kEof };
SessionCommand read_session_command(std::istream& in,
                                    DispatchRequest* request);

// Incremental frame scanner for the dispatcher's session reader: returns
// true when buffer[start..] holds one complete frame (through its `end`
// line), setting *extent to one past the frame's last byte; false when
// more bytes are needed. Length-prefixed payload bytes are skipped by
// size, so payload contents never confuse the line scan. The scanner
// only delimits — strict validation happens when the complete frame is
// parsed.
bool scan_session_frame(const std::string& buffer, std::size_t start,
                        std::size_t* extent);

}  // namespace fairsched::dist
