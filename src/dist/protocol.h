#pragma once

// The dispatcher <-> shard-worker wire protocol (docs/DISTRIBUTED.md).
//
// A dispatch sends each worker one DispatchRequest on stdin and reads one
// framed shard artifact back on stdout. The request does NOT carry the
// plan JSON: a spec reconstructed from its summary is reporting-only
// (exp/sweep_plan.h) and cannot be re-executed. Instead the request
// carries the argv tokens that rebuild the sweep — the subcommand plus
// the original flags, minus orchestration/reporting flags — and, so
// remote hosts need no shared filesystem, the raw bytes of the --config
// file when one was given. The worker rebuilds the spec, builds its
// shard's plan, and refuses to run unless the rebuilt plan's fingerprint
// equals the request's: the merge contract's fingerprint check, moved
// before any compute is spent.
//
// Both frames open with a `<magic> <version>` handshake line so a version
// skew between dispatcher and worker binaries fails with a message naming
// both versions instead of a parse error mid-stream. Framing is
// line-oriented except for the two length-prefixed byte payloads (config
// content in, artifact JSON out), which are copied verbatim.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fairsched::dist {

inline constexpr int kDispatchProtocolVersion = 1;

// Everything a shard-worker needs to reproduce one shard of a sweep.
struct DispatchRequest {
  // Whole-plan fingerprint (exp/sweep_plan.h) the worker must reproduce.
  std::uint64_t fingerprint = 0;
  // The shard this attempt executes; the dispatcher rewrites these per
  // assignment, the rest of the request is shared by every attempt.
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  // Worker thread budget (0 = the worker's hardware concurrency).
  std::size_t threads = 0;
  // Subcommand + flags rebuilding the sweep (no newlines allowed; the
  // framing is line-oriented). args[0] is the scenario name ("custom",
  // "table1", ...), the rest are --flag tokens.
  std::vector<std::string> args;
  // Embedded sweep config file: when non-empty the worker writes
  // `config_content` to a scratch file and appends --config=<path> to
  // args. `config_name` is display-only (log/error messages).
  std::string config_name;
  std::string config_content;
};

// Serializes `request`. Throws std::invalid_argument when an arg or the
// config name contains a newline (unrepresentable in the framing).
void write_dispatch_request(std::ostream& out, const DispatchRequest& request);

// Parses one request from `in`. Throws std::invalid_argument on a missing
// or mis-versioned handshake, truncated input, or malformed fields.
DispatchRequest read_dispatch_request(std::istream& in);

// The worker's reply: its shard identity plus the artifact JSON bytes
// (exp/sweep_artifact.h), length-prefixed so the payload is copied
// verbatim whatever it contains.
struct ArtifactFrame {
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  std::string payload;  // shard artifact JSON
};

void write_artifact_frame(std::ostream& out, std::size_t shard,
                          std::size_t shard_count, const std::string& payload);

// Parses the artifact frame out of a worker's captured stdout. Tolerates
// noise *before* the handshake line (ssh banners, motd leakage) but is
// strict from the handshake on. Throws std::invalid_argument when no
// frame is found, the version differs, or the payload is truncated.
ArtifactFrame parse_artifact_frame(const std::string& text,
                                   const std::string& source);

}  // namespace fairsched::dist
