#pragma once

// The worker-transport seam of the distributed dispatcher.
//
// A WorkerTransport runs one attempt of one shard somewhere — a forked
// local process, a remote host over ssh, or (in tests) an in-memory
// double that injects failures — and reports what happened as an Outcome
// instead of throwing: per-attempt failures are routine events the
// Dispatcher retries, not exceptions. The process-backed transports share
// run_worker_process, which speaks the dist/protocol.h framing over the
// child's stdin/stdout, enforces the per-attempt deadline with SIGKILL,
// and inherits stderr so worker breadcrumbs land in the dispatcher's own
// stderr stream.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "dist/protocol.h"

namespace fairsched::dist {

class WorkerTransport {
 public:
  struct Outcome {
    enum class Status {
      kArtifact,  // payload holds the (unvalidated) artifact JSON
      kFailed,    // the attempt failed; detail says how
      kTimeout,   // the deadline expired; the worker process was killed
    };
    Status status = Status::kFailed;
    std::string payload;
    std::string detail;  // diagnostic for the dispatch log
  };

  virtual ~WorkerTransport() = default;

  // Stable display name ("local#0", "ssh:hostb"), used in the dispatch
  // log and the dry-run assignment plan.
  virtual const std::string& name() const = 0;

  // Runs one attempt of request.shard, blocking until it completes, fails
  // or times out (timeout 0 = unbounded). Routine failures come back as
  // Outcomes; a thrown exception means the transport itself is broken and
  // retires this worker.
  virtual Outcome run_shard(const DispatchRequest& request,
                            std::chrono::milliseconds timeout) = 0;
};

// Spawns `argv`, writes `request` to its stdin, captures stdout until EOF
// or deadline (SIGKILL on expiry), and parses the artifact frame — also
// checking the frame echoes the requested shard. Exposed for transports
// and for direct testing against plain commands.
WorkerTransport::Outcome run_worker_process(
    const std::vector<std::string>& argv, const DispatchRequest& request,
    std::chrono::milliseconds timeout);

// fork/exec of `program shard-worker` on this host — the transport behind
// --workers=local and the executor-level --processes path.
class LocalProcessTransport final : public WorkerTransport {
 public:
  LocalProcessTransport(std::string name, std::string program);

  const std::string& name() const override { return name_; }
  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override;

 private:
  std::string name_;
  std::string program_;
};

// Spawns `remote_program shard-worker` on `host` through an ssh-style
// command (argv = ssh_command + {host, remote_program, "shard-worker"}),
// streaming the request in and the artifact frame back over the ssh
// channel. `ssh_command` is overridable (--ssh-cmd) so CI substitutes the
// hermetic scripts/fake_ssh.py harness.
class SshTransport final : public WorkerTransport {
 public:
  SshTransport(std::string name, std::vector<std::string> ssh_command,
               std::string host, std::string remote_program);

  const std::string& name() const override { return name_; }
  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override;

 private:
  std::string name_;
  std::vector<std::string> argv_;
};

}  // namespace fairsched::dist
