#pragma once

// The worker-transport seam of the distributed dispatcher.
//
// A WorkerTransport runs one attempt of one shard somewhere — a forked
// local process, a remote host over ssh, or (in tests) an in-memory
// double that injects failures — and reports what happened as an Outcome
// instead of throwing: per-attempt failures are routine events the
// Dispatcher retries, not exceptions. The process-backed transports share
// run_worker_process, which speaks the dist/protocol.h framing over the
// child's stdin/stdout, enforces the per-attempt deadline with SIGKILL,
// and inherits stderr so worker breadcrumbs land in the dispatcher's own
// stderr stream.
//
// PersistentTransport is the protocol-v2 session path
// (--persistent-workers): one long-lived `shard-worker --session` child
// serves every run_shard call over a single connection, keeping its
// in-memory WorkloadCache and parsed plan warm across shards. A timeout
// or protocol error tears the session down (SIGKILL) and the next
// run_shard respawns it; a peer that answers the first request with a v1
// artifact instead of a session hello is a skewed binary, and the
// transport falls back to spawn-per-attempt for the rest of the run.

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/dispatch_log.h"
#include "dist/protocol.h"

namespace fairsched::dist {

class WorkerTransport {
 public:
  struct Outcome {
    enum class Status {
      kArtifact,  // payload holds the (unvalidated) artifact JSON
      kFailed,    // the attempt failed; detail says how
      kTimeout,   // the deadline expired; the worker process was killed
    };
    Status status = Status::kFailed;
    std::string payload;
    std::string detail;  // diagnostic for the dispatch log
  };

  // Sentinel for thread_override(): keep the dispatcher's request value.
  static constexpr std::size_t kNoThreadOverride =
      static_cast<std::size_t>(-1);

  virtual ~WorkerTransport() = default;

  // Stable display name ("local#0", "ssh:hostb"), used in the dispatch
  // log and the dry-run assignment plan.
  virtual const std::string& name() const = 0;

  // Runs one attempt of request.shard, blocking until it completes, fails
  // or times out (timeout 0 = unbounded). Routine failures come back as
  // Outcomes; a thrown exception means the transport itself is broken and
  // retires this worker.
  virtual Outcome run_shard(const DispatchRequest& request,
                            std::chrono::milliseconds timeout) = 0;

  // Best-effort cancellation of a run_shard in flight on another thread —
  // the dispatcher cancels losing speculative duplicates so their workers
  // free up immediately. Default: no-op (the attempt runs to completion
  // and its outcome is ignored). Must be thread-safe.
  virtual void cancel_inflight() {}

  // One human summary line for the end-of-dispatch per-worker report
  // ("4 shard(s) over 1 session(s), cache 30 hit(s)..."); "" = nothing
  // to report.
  virtual std::string summary() const { return ""; }

  // Per-worker request.threads override applied to every attempt this
  // transport runs. 0 = the worker's own hardware concurrency (the remote
  // default — dist/protocol.h); kNoThreadOverride = keep the dispatcher's
  // value. Set for remote workers dispatched without --worker-threads,
  // whose budget must not be derived from the *local* host's cores.
  void set_thread_override(std::size_t threads) {
    thread_override_ = threads;
  }
  std::size_t thread_override() const { return thread_override_; }

 private:
  std::size_t thread_override_ = kNoThreadOverride;
};

// Spawns `argv`, writes `request` to its stdin, captures stdout until EOF
// or deadline (SIGKILL on expiry), and parses the artifact frame — also
// checking the frame echoes the requested shard. Exposed for transports
// and for direct testing against plain commands.
WorkerTransport::Outcome run_worker_process(
    const std::vector<std::string>& argv, const DispatchRequest& request,
    std::chrono::milliseconds timeout);

// fork/exec of `program shard-worker` on this host — the transport behind
// --workers=local and the executor-level --processes path.
class LocalProcessTransport final : public WorkerTransport {
 public:
  LocalProcessTransport(std::string name, std::string program);

  const std::string& name() const override { return name_; }
  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override;
  std::string summary() const override;

 private:
  std::string name_;
  std::string program_;
  std::size_t attempts_ = 0;  // touched only by the owning worker thread
};

// Spawns `remote_program shard-worker` on `host` through an ssh-style
// command (argv = ssh_command + {host, remote_program, "shard-worker"}),
// streaming the request in and the artifact frame back over the ssh
// channel. `ssh_command` is overridable (--ssh-cmd) so CI substitutes the
// hermetic scripts/fake_ssh.py harness.
class SshTransport final : public WorkerTransport {
 public:
  SshTransport(std::string name, std::vector<std::string> ssh_command,
               std::string host, std::string remote_program);

  const std::string& name() const override { return name_; }
  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override;
  std::string summary() const override;

 private:
  std::string name_;
  std::vector<std::string> argv_;
  std::size_t attempts_ = 0;  // touched only by the owning worker thread
};

// One long-lived session worker (protocol v2). `session_argv` spawns the
// resident peer (`program shard-worker --session`, possibly ssh-wrapped);
// `fallback_argv` is the spawn-per-attempt command used after a v1 peer
// is detected. Lifecycle:
//
//   * the session is opened lazily by the first run_shard and reused by
//     every later one; each request is written to the live child and one
//     hello/artifact stream is read back incrementally;
//   * timeout, EOF, or a protocol error tears the session down (SIGKILL)
//     and the attempt reports kTimeout/kFailed — the dispatcher requeues
//     the shard, and the next run_shard (any shard) respawns a fresh
//     session. Remaining shards are never lost with the session;
//   * a first response with no session hello marks the peer v1
//     (binary skew): that artifact is still used, and every later attempt
//     runs through run_worker_process(fallback_argv) instead;
//   * cancel_inflight kills the live child, so a losing speculative
//     duplicate frees its worker immediately (cost: the next shard on
//     this worker starts a cold session);
//   * the destructor sends a goodbye frame and closes the child's stdin,
//     escalating to SIGKILL when the child does not exit promptly.
//
// run_shard must stay single-callered (the dispatcher's one worker thread
// per transport); cancel_inflight is the only concurrent entry point.
class PersistentTransport final : public WorkerTransport {
 public:
  struct SessionStats {
    std::size_t opens = 0;     // sessions spawned, respawns included
    std::size_t served = 0;    // artifacts received over sessions
    std::size_t fallback = 0;  // spawn-per-attempt runs after v1 fallback
    std::size_t hello_threads = 0;  // worker-reported hardware concurrency
    bool v1_peer = false;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t replayed = 0;
  };

  // `log` is optional (session-open/close events) and must outlive the
  // transport when given.
  PersistentTransport(std::string name, std::vector<std::string> session_argv,
                      std::vector<std::string> fallback_argv,
                      DispatchLog* log = nullptr);
  ~PersistentTransport() override;

  const std::string& name() const override { return name_; }
  Outcome run_shard(const DispatchRequest& request,
                    std::chrono::milliseconds timeout) override;
  void cancel_inflight() override;
  std::string summary() const override;

  SessionStats session_stats() const;
  // 0 until the first session hello arrives.
  std::size_t hello_threads() const;

 private:
  // All require mu_ held.
  bool open_session_locked(std::string* error);
  void teardown_locked(const char* reason, bool kill_child);

  std::string name_;
  std::vector<std::string> session_argv_;
  std::vector<std::string> fallback_argv_;
  DispatchLog* log_;

  mutable std::mutex mu_;  // guards everything below (vs cancel_inflight)
  pid_t pid_ = -1;
  int in_fd_ = -1;   // dispatcher -> worker stdin
  int out_fd_ = -1;  // worker stdout -> dispatcher
  std::string buffer_;      // unconsumed session bytes
  bool hello_seen_ = false;  // this session produced its hello frame
  bool inflight_ = false;
  bool cancel_requested_ = false;
  bool v1_peer_ = false;
  SessionStats stats_;
};

}  // namespace fairsched::dist
