#pragma once

// LiveInstance: the growable workload behind the online scheduler.
//
// Batch mode builds an immutable Instance up front; serve mode learns of
// jobs one arrival at a time. LiveInstance owns an Instance whose platform
// (organizations and machine counts) is frozen at construction and whose
// per-organization job lists grow as arrivals are fed in. It is the one
// sanctioned mutator of Instance (a friend), and it preserves exactly the
// invariants InstanceBuilder establishes:
//
//   * per-organization FIFO numbering: the appended job's index is the
//     current list length;
//   * release-sorted job lists: appends must be nondecreasing in release
//     time per organization (arrivals are fed in global time order, so
//     this holds naturally; violations throw);
//   * positive processing times, non-negative releases.
//
// Consequently an Instance grown job-by-job is field-for-field identical
// to the Instance InstanceBuilder would build from the same jobs — the
// foundation of the serve-vs-batch differential replay contract
// (tests/test_serve_replay.cc).
//
// The engine reads the instance through a stable pointer; appending
// invalidates no engine state because the engine only indexes jobs it has
// been told about (Engine::inject_release) and never caches spans across
// events.

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"

namespace fairsched::serve {

class LiveInstance {
 public:
  // Freezes the platform: organization u owns machines[u] machines.
  // Organizations are named "org<u>". Throws std::invalid_argument on an
  // empty platform (no machines at all).
  explicit LiveInstance(const std::vector<std::uint32_t>& machines);

  // Appends organization u's next FIFO job; returns its index. Throws
  // std::invalid_argument on an unknown organization, release < 0,
  // release below the organization's previous job's release, or
  // processing < 1.
  std::uint32_t append_job(OrgId org, Time release, Time processing);

  const Instance& instance() const { return inst_; }
  std::uint32_t num_orgs() const { return inst_.num_orgs(); }
  std::size_t num_jobs() const { return inst_.num_jobs(); }

 private:
  Instance inst_;
};

}  // namespace fairsched::serve
