#include "serve/live_instance.h"

#include <algorithm>
#include <stdexcept>

namespace fairsched::serve {

LiveInstance::LiveInstance(const std::vector<std::uint32_t>& machines) {
  InstanceBuilder builder;
  for (std::size_t u = 0; u < machines.size(); ++u) {
    builder.add_org("org" + std::to_string(u), machines[u]);
  }
  inst_ = std::move(builder).build();
  if (inst_.total_machines() == 0) {
    throw std::invalid_argument(
        "LiveInstance: the platform has no machines");
  }
}

std::uint32_t LiveInstance::append_job(OrgId org, Time release,
                                       Time processing) {
  if (org >= inst_.num_orgs()) {
    throw std::invalid_argument("append_job: unknown organization");
  }
  if (release < 0) {
    throw std::invalid_argument("append_job: negative release time");
  }
  if (processing <= 0) {
    throw std::invalid_argument(
        "append_job: processing time must be positive");
  }
  std::vector<Job>& jobs = inst_.jobs_[org];
  if (!jobs.empty() && release < jobs.back().release) {
    throw std::invalid_argument(
        "append_job: releases must be nondecreasing per organization");
  }
  const std::uint32_t index = static_cast<std::uint32_t>(jobs.size());
  jobs.push_back(Job{org, index, release, processing});
  inst_.num_jobs_++;
  inst_.total_work_ += processing;
  inst_.last_release_ = std::max(inst_.last_release_, release);
  return index;
}

}  // namespace fairsched::serve
