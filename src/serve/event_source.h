#pragma once

// Event sources for the online scheduler (src/serve/session.h).
//
// A serve session consumes a stream of job-arrival events in nondecreasing
// time order. Completions are not external events: like the batch engine,
// the serve loop learns a job's processing time at submission (the trace
// carries it, exactly as an Instance does) and schedules the completion
// itself when it starts the job — the paper's non-clairvoyance is enforced
// one layer down, at the PolicyView, which never shows processing times to
// policies.
//
// --- The trace line protocol -----------------------------------------------
//
// A trace is line-oriented text. Blank lines and `#` comments are skipped.
//
//   org <machines>                 declare the next organization (ids are
//                                  assigned in declaration order, 0-based);
//                                  all `org` lines precede the first `job`
//   job <time> <org> <processing>  a job arrival; times nondecreasing,
//                                  processing >= 1
//   end                            optional explicit end marker; nothing
//                                  but blank/comment lines may follow
//
// Parsing is strict, mirroring parse_shard_spec's convention: any
// malformed line throws std::invalid_argument with the 1-based line
// number and what was expected ("<name> line 12: ..."), which the CLI
// surfaces as a one-line diagnostic and a nonzero exit.
//
// TraceEventSource streams events from any std::istream (file or stdin)
// without materializing the trace; SyntheticEventSource is an open-loop
// generator (Poisson arrivals at a configurable rate, lognormal job sizes,
// Zipf-weighted organizations — deterministic given the seed) for load
// tests and CI sessions that need no input file. Both can be recorded back
// to protocol text (write_trace_header / write_job_line) such that
// re-parsing yields the identical event sequence.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/rng.h"

namespace fairsched::serve {

// One external event: organization `org` submits a job at `time` whose
// processing time is `processing`.
struct JobEvent {
  Time time = 0;
  OrgId org = 0;
  Time processing = 1;

  friend bool operator==(const JobEvent&, const JobEvent&) = default;
};

class EventSource {
 public:
  virtual ~EventSource() = default;

  // The frozen platform: machines[u] machines for organization u.
  virtual const std::vector<std::uint32_t>& machines() const = 0;

  // Next arrival in nondecreasing time order, or nullopt when drained.
  virtual std::optional<JobEvent> next() = 0;
};

// Streams a trace from `in` (not owned; must outlive the source). The
// header (org lines) is parsed eagerly by the constructor; job lines are
// parsed on demand, so arbitrarily long traces stream in O(1) memory.
// `name` labels diagnostics ("stdin", a file path).
class TraceEventSource final : public EventSource {
 public:
  TraceEventSource(std::istream& in, std::string name);

  const std::vector<std::uint32_t>& machines() const override {
    return machines_;
  }
  std::optional<JobEvent> next() override;

 private:
  [[noreturn]] void fail(const std::string& why) const;
  // Reads lines until the next event, `end`, or EOF; returns whether an
  // event was produced into pending_.
  bool read_ahead();

  std::istream* in_;
  std::string name_;
  std::vector<std::uint32_t> machines_;
  std::optional<JobEvent> pending_;
  std::uint64_t line_ = 0;     // 1-based number of the last line read
  Time last_time_ = 0;         // monotonicity check
  bool saw_job_ = false;       // org lines must precede job lines
  bool saw_end_ = false;
};

// Open-loop synthetic generator: `events` arrivals with exponential
// inter-arrival gaps at `arrival_rate` per time unit (rounded to the
// discrete grid, so bursts of simultaneous timestamps occur naturally),
// organizations drawn Zipf(zipf_s) over `orgs` (s = 0: uniform), sizes
// lognormal(job_mu, job_sigma) truncated to [1, max_job]. Deterministic
// given `seed`.
struct SyntheticServeSpec {
  std::uint32_t orgs = 100;
  std::uint32_t machines_per_org = 1;
  std::uint64_t events = 10000;
  double arrival_rate = 1.0;  // arrivals per time unit, > 0
  double zipf_s = 1.0;        // org popularity skew; 0 = uniform
  double job_mu = 3.0;        // lognormal parameters of job sizes
  double job_sigma = 1.0;
  Time max_job = 10000;
  std::uint64_t seed = 2013;
};

class SyntheticEventSource final : public EventSource {
 public:
  explicit SyntheticEventSource(const SyntheticServeSpec& spec);

  const std::vector<std::uint32_t>& machines() const override {
    return machines_;
  }
  std::optional<JobEvent> next() override;

 private:
  SyntheticServeSpec spec_;
  std::vector<std::uint32_t> machines_;
  Rng rng_;
  ZipfSampler org_sampler_;
  double clock_ = 0.0;  // continuous arrival clock, floored per event
  std::uint64_t emitted_ = 0;
};

// Protocol writers, inverse of TraceEventSource: write_trace_header emits
// one `org` line per organization, write_job_line one `job` line.
// Re-parsing the concatenation yields the identical platform and event
// sequence (round-trip pinned by tests/test_serve_replay.cc).
void write_trace_header(std::ostream& out,
                        const std::vector<std::uint32_t>& machines);
void write_job_line(std::ostream& out, const JobEvent& event);

}  // namespace fairsched::serve
