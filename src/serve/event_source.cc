#include "serve/event_source.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/cli.h"

namespace fairsched::serve {

namespace {

// Strict nonnegative integer parse (the protocol has no signs, no hex, no
// floats); returns false on any non-digit or overflow past `max`.
bool parse_number(const std::string& token, std::int64_t max,
                  std::int64_t* out) {
  if (token.empty() || token.size() > 18) return false;
  std::int64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value > max) return false;
  *out = value;
  return true;
}

}  // namespace

TraceEventSource::TraceEventSource(std::istream& in, std::string name)
    : in_(&in), name_(std::move(name)) {
  // Eagerly parse the header and stage the first event so machines() is
  // complete before the caller builds the platform.
  read_ahead();
  if (machines_.empty()) {
    fail("no organizations declared (want `org <machines>` lines first)");
  }
}

void TraceEventSource::fail(const std::string& why) const {
  throw std::invalid_argument(name_ + " line " + std::to_string(line_) +
                              ": " + why);
}

bool TraceEventSource::read_ahead() {
  std::string raw;
  while (std::getline(*in_, raw)) {
    line_++;
    const std::string line = trim_whitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    if (saw_end_) fail("content after `end`");
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
      std::size_t space = line.find_first_of(" \t", pos);
      if (space == std::string::npos) space = line.size();
      if (space > pos) tokens.push_back(line.substr(pos, space - pos));
      pos = space + 1;
    }
    const std::string& verb = tokens[0];
    if (verb == "org") {
      if (saw_job_) fail("`org` after the first `job` (platform is frozen)");
      if (tokens.size() != 2) fail("want `org <machines>`");
      std::int64_t machines = 0;
      if (!parse_number(tokens[1], 4294967295, &machines)) {
        fail("machine count '" + tokens[1] +
             "' is not a nonnegative integer");
      }
      machines_.push_back(static_cast<std::uint32_t>(machines));
      continue;
    }
    if (verb == "job") {
      if (machines_.empty()) {
        fail("`job` before any `org` line (declare the platform first)");
      }
      if (tokens.size() != 4) fail("want `job <time> <org> <processing>`");
      std::int64_t time = 0;
      std::int64_t org = 0;
      std::int64_t processing = 0;
      if (!parse_number(tokens[1], kTimeInfinity / 4, &time)) {
        fail("time '" + tokens[1] + "' is not a nonnegative integer");
      }
      if (!parse_number(tokens[2],
                        static_cast<std::int64_t>(machines_.size()) - 1,
                        &org)) {
        fail("org '" + tokens[2] + "' is not an organization id < " +
             std::to_string(machines_.size()));
      }
      if (!parse_number(tokens[3], kTimeInfinity / 4, &processing) ||
          processing < 1) {
        fail("processing '" + tokens[3] + "' is not a positive integer");
      }
      if (time < last_time_) {
        fail("time " + std::to_string(time) +
             " goes backwards (previous event at " +
             std::to_string(last_time_) + ")");
      }
      last_time_ = time;
      saw_job_ = true;
      pending_ = JobEvent{time, static_cast<OrgId>(org), processing};
      return true;
    }
    if (verb == "end") {
      if (tokens.size() != 1) fail("want `end` with no arguments");
      saw_end_ = true;
      continue;
    }
    fail("unknown directive '" + verb + "' (want org, job, or end)");
  }
  return false;
}

std::optional<JobEvent> TraceEventSource::next() {
  if (!pending_.has_value()) return std::nullopt;
  const JobEvent event = *pending_;
  pending_.reset();
  read_ahead();
  return event;
}

SyntheticEventSource::SyntheticEventSource(const SyntheticServeSpec& spec)
    : spec_(spec),
      machines_(spec.orgs, spec.machines_per_org),
      rng_(mix_seed(spec.seed, 0x5e7feULL)),
      org_sampler_(spec.orgs, spec.zipf_s) {
  if (spec.orgs == 0) {
    throw std::invalid_argument("synthetic serve: orgs must be >= 1");
  }
  if (spec.machines_per_org == 0) {
    throw std::invalid_argument(
        "synthetic serve: machines-per-org must be >= 1");
  }
  if (!(spec.arrival_rate > 0.0)) {
    throw std::invalid_argument(
        "synthetic serve: arrival-rate must be positive");
  }
}

std::optional<JobEvent> SyntheticEventSource::next() {
  if (emitted_ >= spec_.events) return std::nullopt;
  emitted_++;
  clock_ += rng_.exponential(spec_.arrival_rate);
  JobEvent event;
  event.time = static_cast<Time>(clock_);
  event.org = static_cast<OrgId>(org_sampler_.sample(rng_) - 1);
  const double size =
      std::floor(rng_.lognormal(spec_.job_mu, spec_.job_sigma));
  event.processing = std::max<Time>(
      1, std::min(spec_.max_job, static_cast<Time>(size)));
  return event;
}

void write_trace_header(std::ostream& out,
                        const std::vector<std::uint32_t>& machines) {
  for (std::uint32_t m : machines) out << "org " << m << "\n";
}

void write_job_line(std::ostream& out, const JobEvent& event) {
  out << "job " << event.time << " " << event.org << " " << event.processing
      << "\n";
}

}  // namespace fairsched::serve
