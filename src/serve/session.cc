#include "serve/session.h"

#include <chrono>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace fairsched::serve {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string format_decision_line(Time time, OrgId org, std::uint32_t index,
                                 MachineId machine) {
  std::string line = "decision ";
  line += std::to_string(time);
  line += ' ';
  line += std::to_string(org);
  line += ' ';
  line += std::to_string(index);
  line += ' ';
  line += std::to_string(machine);
  line += '\n';
  return line;
}

// Attached to the engine in the policy's place: forwards every push
// notification to the real policy (so incremental policies see the exact
// lifecycle Engine::run delivers) and maintains the resident-count
// statistics on the side. Stats reads never mutate engine state visible to
// the policy, so instrumentation cannot perturb decisions.
class ServeSession::StatsListener final : public Policy {
 public:
  StatsListener(Policy* inner, const Engine* engine, ServeReport* report)
      : inner_(inner), engine_(engine), report_(report) {}

  void reset(const PolicyView& view) override { inner_->reset(view); }
  OrgId select(const PolicyView& view) override {
    return inner_->select(view);
  }
  void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                MachineId machine) override {
    inner_->on_start(view, org, index, machine);
  }
  void on_advance(const PolicyView& view, Time dt) override {
    inner_->on_advance(view, dt);
  }
  void on_release(const PolicyView& view, OrgId org) override {
    inner_->on_release(view, org);
    // This release made the organization resident iff it is its only
    // pending job (the waiting count was already incremented).
    if (engine_->waiting(org) + engine_->running(org) == 1) {
      resident_orgs_++;
      if (resident_orgs_ > report_->peak_resident_orgs) {
        report_->peak_resident_orgs = resident_orgs_;
      }
    }
    // Resident jobs only grow on releases (starts just move waiting ->
    // running; completions shrink), so the peak is exact when sampled here.
    const std::uint32_t resident =
        engine_->waiting_total() +
        (engine_->total_machines() - engine_->free_machines());
    if (resident > report_->peak_resident_jobs) {
      report_->peak_resident_jobs = resident;
    }
  }
  void on_complete(const PolicyView& view, OrgId org,
                   MachineId machine) override {
    inner_->on_complete(view, org, machine);
    report_->completions++;
    if (engine_->waiting(org) + engine_->running(org) == 0) {
      resident_orgs_--;
    }
  }

  std::uint32_t resident_orgs() const { return resident_orgs_; }

 private:
  Policy* inner_;
  const Engine* engine_;
  ServeReport* report_;
  std::uint32_t resident_orgs_ = 0;
};

ServeSession::ServeSession(const std::vector<std::uint32_t>& machines,
                           std::unique_ptr<Policy> policy,
                           ServeOptions options)
    : options_(std::move(options)),
      live_(machines),
      policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("ServeSession: no policy");
  }
  if (!options_.clock_ns) options_.clock_ns = steady_now_ns;
  EngineOptions engine_options;
  engine_options.machine_pick = MachinePick::kFirstFree;
  engine_options.external_releases = true;
  engine_ = std::make_unique<Engine>(live_.instance(), engine_options);
  listener_ =
      std::make_unique<StatsListener>(policy_.get(), engine_.get(), &report_);
  report_.orgs = live_.num_orgs();
  report_.machines = engine_->total_machines();
}

ServeSession::~ServeSession() = default;

void ServeSession::emit_stats_line() {
  if (options_.stats == nullptr) return;
  report_.stats_lines++;
  const LatencyHistogram& h = report_.decision_latency;
  *options_.stats << "serve-stats: t=" << engine_->now()
                  << " arrivals=" << report_.arrivals
                  << " events=" << engine_->events_processed()
                  << " decisions=" << engine_->decisions_made()
                  << " completions=" << report_.completions
                  << " waiting=" << engine_->waiting_total() << " running="
                  << (engine_->total_machines() - engine_->free_machines())
                  << " resident-orgs=" << listener_->resident_orgs()
                  << " p50=" << h.p50() << "ns p99=" << h.p99() << "ns\n";
}

void ServeSession::run(EventSource& source) {
  if (ran_) {
    throw std::logic_error("ServeSession::run: session already ran");
  }
  ran_ = true;
  const std::vector<std::uint32_t>& platform = source.machines();
  bool same_platform = platform.size() == live_.num_orgs();
  for (OrgId u = 0; same_platform && u < live_.num_orgs(); ++u) {
    same_platform = platform[u] == live_.instance().machines_of(u);
  }
  if (!same_platform) {
    throw std::invalid_argument(
        "ServeSession::run: source platform differs from the session's");
  }
  if (options_.record_trace != nullptr) {
    write_trace_header(*options_.record_trace, source.machines());
  }
  const Time horizon =
      options_.horizon > 0 ? options_.horizon : kTimeInfinity;
  const std::uint64_t run_start_ns = options_.clock_ns();

  PolicyView view(*engine_);
  engine_->attach(listener_.get());
  listener_->reset(view);

  std::optional<JobEvent> pending = source.next();
  std::uint64_t arrivals_at_last_stats = 0;
  for (;;) {
    Time td = engine_->next_decision_time();
    // Feed every arrival at or before the tentative wake-up time: each one
    // can only move the next decision earlier, so at fixpoint td equals
    // what a fully preloaded batch engine would compute.
    while (pending.has_value() && pending->time <= td) {
      const JobEvent event = *pending;
      const std::uint32_t index =
          live_.append_job(event.org, event.time, event.processing);
      (void)index;
      engine_->inject_release(event.org);
      report_.arrivals++;
      if (options_.record_trace != nullptr) {
        write_job_line(*options_.record_trace, event);
      }
      pending = source.next();
      td = engine_->next_decision_time();
    }
    if (td >= horizon) break;  // covers the drained case (td == infinity)
    engine_->advance_to(td);
    while (engine_->needs_decision()) {
      const std::uint64_t t0 = options_.clock_ns();
      const OrgId u = policy_->select(view);
      if (u >= engine_->num_orgs() || engine_->waiting(u) == 0) {
        throw std::logic_error(
            "policy selected an organization with no waiting job");
      }
      const std::uint32_t index = engine_->schedule().num_started(u);
      const MachineId m = engine_->start_front(u);
      policy_->on_start(view, u, index, m);
      report_.decision_latency.record(options_.clock_ns() - t0);
      if (options_.decisions != nullptr) {
        *options_.decisions << format_decision_line(engine_->now(), u, index,
                                                    m);
      }
    }
    if (options_.stats_interval > 0 &&
        report_.arrivals - arrivals_at_last_stats >= options_.stats_interval) {
      arrivals_at_last_stats = report_.arrivals;
      emit_stats_line();
    }
  }
  if (options_.horizon > 0) engine_->advance_to(options_.horizon);
  engine_->attach(nullptr);
  if (options_.record_trace != nullptr) *options_.record_trace << "end\n";

  report_.engine_events = engine_->events_processed();
  report_.decisions = engine_->decisions_made();
  report_.final_time = engine_->now();
  report_.elapsed_ns = options_.clock_ns() - run_start_ns;
  if (options_.stats != nullptr) emit_stats_line();
}

std::uint64_t replay_batch(const Instance& inst, Policy& policy,
                           Time horizon, std::ostream* decisions) {
  if (horizon <= 0) horizon = inst.last_release() + inst.total_work() + 1;
  Engine engine(inst);
  // Record through the policy slot Engine::run drives: on_start fires
  // immediately after each decision is applied, in decision order, with
  // view.now() equal to the decision time — the same emission point the
  // serve loop uses.
  class Recorder final : public Policy {
   public:
    Recorder(Policy* inner, std::ostream* out) : inner_(inner), out_(out) {}
    void reset(const PolicyView& view) override { inner_->reset(view); }
    OrgId select(const PolicyView& view) override {
      return inner_->select(view);
    }
    void on_start(const PolicyView& view, OrgId org, std::uint32_t index,
                  MachineId machine) override {
      inner_->on_start(view, org, index, machine);
      if (out_ != nullptr) {
        *out_ << format_decision_line(view.now(), org, index, machine);
      }
    }
    void on_advance(const PolicyView& view, Time dt) override {
      inner_->on_advance(view, dt);
    }
    void on_release(const PolicyView& view, OrgId org) override {
      inner_->on_release(view, org);
    }
    void on_complete(const PolicyView& view, OrgId org,
                     MachineId machine) override {
      inner_->on_complete(view, org, machine);
    }

   private:
    Policy* inner_;
    std::ostream* out_;
  };
  Recorder recorder(&policy, decisions);
  engine.run(recorder, horizon);
  return engine.decisions_made();
}

Instance materialize_trace(EventSource& source) {
  InstanceBuilder builder;
  const std::vector<std::uint32_t>& machines = source.machines();
  for (std::size_t u = 0; u < machines.size(); ++u) {
    builder.add_org("org" + std::to_string(u), machines[u]);
  }
  while (std::optional<JobEvent> event = source.next()) {
    builder.add_job(event->org, event->time, event->processing);
  }
  return std::move(builder).build();
}

void write_report_json(std::ostream& out, const ServeReport& report,
                       const std::string& policy, const std::string& source) {
  const double elapsed_ms =
      static_cast<double>(report.elapsed_ns) / 1e6;
  const double elapsed_s =
      static_cast<double>(report.elapsed_ns) / 1e9;
  const double events_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(report.engine_events) / elapsed_s
                      : 0.0;
  const double decisions_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(report.decisions) / elapsed_s
                      : 0.0;
  const LatencyHistogram& h = report.decision_latency;
  out << "{\n";
  out << "  \"sweep\": \"serve\",\n";
  out << "  \"policy\": \"" << policy << "\",\n";
  out << "  \"source\": \"" << source << "\",\n";
  out << "  \"orgs\": " << report.orgs << ",\n";
  out << "  \"machines\": " << report.machines << ",\n";
  out << "  \"arrivals\": " << report.arrivals << ",\n";
  out << "  \"engine_events\": " << report.engine_events << ",\n";
  out << "  \"decisions\": " << report.decisions << ",\n";
  out << "  \"completions\": " << report.completions << ",\n";
  out << "  \"final_time\": " << report.final_time << ",\n";
  out << "  \"peak_resident_jobs\": " << report.peak_resident_jobs << ",\n";
  out << "  \"peak_resident_orgs\": " << report.peak_resident_orgs << ",\n";
  out << "  \"stats_lines\": " << report.stats_lines << ",\n";
  out << "  \"elapsed_ms\": " << json_exact_double(elapsed_ms) << ",\n";
  out << "  \"events_per_sec\": " << json_exact_double(events_per_sec)
      << ",\n";
  out << "  \"decisions_per_sec\": " << json_exact_double(decisions_per_sec)
      << ",\n";
  out << "  \"decision_latency_ns\": {\n";
  out << "    \"count\": " << h.total_count() << ",\n";
  out << "    \"mean\": " << json_exact_double(h.mean()) << ",\n";
  out << "    \"p50\": " << h.p50() << ",\n";
  out << "    \"p95\": " << h.p95() << ",\n";
  out << "    \"p99\": " << h.p99() << ",\n";
  out << "    \"max\": " << h.max() << "\n";
  out << "  }\n";
  out << "}\n";
}

}  // namespace fairsched::serve
