#pragma once

// ServeSession: the long-running online scheduler loop.
//
// A session keeps org/job state resident in one external-releases Engine
// (sim/engine.h) over a LiveInstance, consumes job arrivals from an
// EventSource, and makes scheduling decisions incrementally under any
// policy-shaped registry policy. The loop is the event-driven mirror of
// Engine::run:
//
//   loop:
//     td = engine.next_decision_time()            (over injected events)
//     while source's next arrival is at <= td:    (it could move td earlier)
//        append to the live instance + inject_release; recompute td
//     if td >= horizon (or everything drained): stop
//     advance_to(td); while needs_decision(): select + start_front
//
// --- The differential replay contract --------------------------------------
//
// Feeding a trace through this loop produces a decision stream (one
// format_decision_line per start, in decision order) BYTE-IDENTICAL to
// running the batch engine over the Instance built from the same trace
// with the same policy and seed (replay_batch below). The argument: the
// inject loop only stops once every arrival at or before the next decision
// time is pending, so each wake-up time equals the batch run's
// next_decision_time; the calendar's drain order depends only on
// event_before, never on insertion order, so advance_to applies the same
// events in the same order; hence every select() sees the identical view
// and the streams match. Enforced for every in-tree policy by
// tests/test_serve_replay.cc and the CI serve job. Corollaries: the
// decision stream is independent of the stats interval, and a crashed
// session recovers exactly by replaying its recorded event log.
//
// --- Observability ---------------------------------------------------------
//
// Each decision's latency (select + start + notify) is recorded into a
// LatencyHistogram (util/latency_histogram.h) through an injectable
// nanosecond clock — tests substitute a deterministic fake so the stats
// JSON is golden-testable. Periodic `serve-stats:` lines report resident
// counts and latency percentiles without perturbing decisions; the final
// ServeReport serializes to a BENCH_serve.json-compatible JSON document
// (write_report_json) gated in CI by scripts/compare_bench.py.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "serve/event_source.h"
#include "serve/live_instance.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "util/latency_histogram.h"

namespace fairsched::serve {

struct ServeOptions {
  // Stop making decisions at this time, like Engine::run's horizon;
  // 0 = run until the source and every pending event drain.
  Time horizon = 0;
  // Arrivals between periodic `serve-stats:` lines; 0 = none. Pure
  // output — the decision stream is identical at any interval.
  std::uint64_t stats_interval = 0;
  std::ostream* stats = nullptr;         // periodic stats lines
  std::ostream* decisions = nullptr;     // decision stream sink
  std::ostream* record_trace = nullptr;  // echo consumed events as a trace
  // Nanosecond clock for latency/throughput measurement; default
  // steady_clock. Tests inject a deterministic fake.
  std::function<std::uint64_t()> clock_ns;
};

struct ServeReport {
  std::uint32_t orgs = 0;
  std::uint32_t machines = 0;
  std::uint64_t arrivals = 0;       // source events consumed
  std::uint64_t engine_events = 0;  // releases admitted + completions
  std::uint64_t decisions = 0;
  std::uint64_t completions = 0;
  std::uint32_t peak_resident_jobs = 0;  // max waiting + running
  std::uint32_t peak_resident_orgs = 0;  // max orgs with pending work
  Time final_time = 0;
  std::uint64_t stats_lines = 0;
  std::uint64_t elapsed_ns = 0;
  LatencyHistogram decision_latency;  // ns per decision; total == decisions
};

// One decision as a protocol line: "decision <time> <org> <index>
// <machine>\n". The one formatter both serve and batch replay use — byte
// equality of their streams is the replay contract.
std::string format_decision_line(Time time, OrgId org, std::uint32_t index,
                                 MachineId machine);

class ServeSession {
 public:
  // The platform is frozen from `machines`; `policy` makes every decision.
  ServeSession(const std::vector<std::uint32_t>& machines,
               std::unique_ptr<Policy> policy, ServeOptions options);
  ~ServeSession();

  // Consumes `source` to completion (or to options.horizon). One call per
  // session.
  void run(EventSource& source);

  const ServeReport& report() const { return report_; }
  const Engine& engine() const { return *engine_; }

 private:
  class StatsListener;  // forwards notifications to the policy + counters

  void emit_stats_line();

  ServeOptions options_;
  LiveInstance live_;
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<StatsListener> listener_;
  std::unique_ptr<Engine> engine_;
  ServeReport report_;
  bool ran_ = false;
};

// The batch half of the differential contract: runs `policy` over a fully
// materialized instance through Engine::run and writes the decision stream
// (if `decisions` is non-null) in the same line format. `horizon` <= 0
// picks the drain bound last_release + total_work + 1, past every possible
// decision. Returns the number of decisions.
std::uint64_t replay_batch(const Instance& inst, Policy& policy,
                           Time horizon, std::ostream* decisions);

// Builds the Instance a trace denotes (same platform, all jobs), for
// replay_batch. Consumes the source.
Instance materialize_trace(EventSource& source);

// Serializes `report` as the stable BENCH_serve.json schema (sorted,
// deterministic given the report; tests/golden/serve_stats.json pins it).
void write_report_json(std::ostream& out, const ServeReport& report,
                       const std::string& policy, const std::string& source);

}  // namespace fairsched::serve
