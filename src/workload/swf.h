#pragma once

// Standard Workload Format (SWF) support.
//
// The paper's experiments replay four traces from the Parallel Workload
// Archive, which are distributed in SWF: one job per line with 18
// whitespace-separated fields (Feitelson's standard), of which we use
//   field 1  job id
//   field 2  submit time (seconds)
//   field 4  run time (seconds; -1 = unknown)
//   field 5  number of allocated processors (-1 = unknown)
//   field 12 user id (-1 = unknown)
// Header comments start with ';'.
//
// Following Section 7.2, a parallel job that required q > 1 processors is
// replaced by q copies of a sequential job of the same duration, and jobs
// are later distributed to organizations through their user ids
// (workload/assignment.h).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.h"

namespace fairsched {

struct SwfJob {
  std::int64_t job_id = 0;
  Time submit = 0;
  Time run_time = 0;
  std::uint32_t processors = 1;
  std::int64_t user = -1;
};

struct SwfTrace {
  std::vector<SwfJob> jobs;      // in file order
  std::vector<std::string> header;  // ';' comment lines, without ';'

  // Distinct non-negative user ids in order of first appearance.
  std::vector<std::int64_t> users() const;

  // Section 7.2 expansion: q-processor jobs become q sequential copies.
  // Jobs with unknown (<= 0) runtime or unknown processor count are dropped.
  SwfTrace expanded_to_sequential() const;
};

// Parses SWF from a stream / file. Malformed lines (wrong field count,
// non-numeric fields) raise std::runtime_error with the line number.
SwfTrace parse_swf(std::istream& in);
SwfTrace load_swf(const std::string& path);

// Writes a trace back out in SWF (18 columns; unused fields -1).
void write_swf(std::ostream& out, const SwfTrace& trace);
void save_swf(const std::string& path, const SwfTrace& trace);

}  // namespace fairsched
