#include "workload/swf.h"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fairsched {

std::vector<std::int64_t> SwfTrace::users() const {
  std::vector<std::int64_t> out;
  std::set<std::int64_t> seen;
  for (const SwfJob& j : jobs) {
    if (j.user < 0) continue;
    if (seen.insert(j.user).second) out.push_back(j.user);
  }
  return out;
}

SwfTrace SwfTrace::expanded_to_sequential() const {
  SwfTrace out;
  out.header = header;
  for (const SwfJob& j : jobs) {
    if (j.run_time <= 0 || j.processors == 0) continue;
    for (std::uint32_t copy = 0; copy < j.processors; ++copy) {
      SwfJob seq = j;
      seq.processors = 1;
      out.jobs.push_back(seq);
    }
  }
  return out;
}

SwfTrace parse_swf(std::istream& in) {
  SwfTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing carriage return (DOS-encoded archives exist).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank
    if (line[first] == ';') {
      trace.header.push_back(line.substr(first + 1));
      continue;
    }
    std::istringstream fields(line);
    std::vector<double> values;
    double v;
    while (fields >> v) values.push_back(v);
    if (!fields.eof()) {
      throw std::runtime_error("SWF line " + std::to_string(line_no) +
                               ": non-numeric field");
    }
    if (values.size() < 12) {
      throw std::runtime_error("SWF line " + std::to_string(line_no) +
                               ": expected >= 12 fields, got " +
                               std::to_string(values.size()));
    }
    SwfJob job;
    job.job_id = static_cast<std::int64_t>(values[0]);
    job.submit = static_cast<Time>(values[1]);
    job.run_time = static_cast<Time>(values[3]);
    const double procs = values[4];
    job.processors =
        procs < 0 ? 0 : static_cast<std::uint32_t>(procs);
    job.user = static_cast<std::int64_t>(values[11]);
    if (job.submit < 0) {
      throw std::runtime_error("SWF line " + std::to_string(line_no) +
                               ": negative submit time");
    }
    trace.jobs.push_back(job);
  }
  return trace;
}

SwfTrace load_swf(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);
  return parse_swf(in);
}

void write_swf(std::ostream& out, const SwfTrace& trace) {
  for (const std::string& h : trace.header) out << ';' << h << '\n';
  for (const SwfJob& j : trace.jobs) {
    // 18 standard fields; the ones we do not model are -1.
    out << j.job_id << ' ' << j.submit << ' ' << -1 << ' ' << j.run_time
        << ' ' << j.processors << ' ' << -1 << ' ' << -1 << ' '
        << j.processors << ' ' << j.run_time << ' ' << -1 << ' ' << -1 << ' '
        << j.user << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' '
        << -1 << ' ' << -1 << '\n';
  }
}

void save_swf(const std::string& path, const SwfTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SWF file: " + path);
  write_swf(out, trace);
}

}  // namespace fairsched
