#pragma once

// Synthetic workload generation.
//
// The paper evaluates on four Parallel Workload Archive traces (LPC-EGEE,
// PIK-IPLEX, RICC, SHARCNET-Whale). Those traces are not redistributable
// here, so we generate synthetic equivalents preserving the properties the
// experiments depend on (see DESIGN.md, "Substitutions"):
//   * the archive's platform shape: processor count and user count,
//   * bursty per-user submission ("users usually send their jobs in
//     consecutive blocks", Section 7.2): each user submits Poisson-arriving
//     sessions of geometrically many jobs spaced closely in time,
//   * heavy-tailed job durations (lognormal, truncated),
//   * per-window load variation, mimicking the variance across the 100
//     window instances the paper samples from each trace.
//
// A generated window is an SwfTrace, so it flows through the same
// assignment code as a real SWF file would.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "workload/assignment.h"
#include "workload/swf.h"

namespace fairsched {

struct SyntheticSpec {
  std::string name;
  std::uint32_t total_machines = 64;
  std::uint32_t users = 32;

  // Per-user session (burst) arrival rate, sessions per time unit.
  double session_rate = 1e-4;
  // Mean jobs per session (geometric distribution, support >= 1).
  double mean_batch = 8.0;
  // Mean gap between consecutive releases within a session (exponential).
  double batch_spacing = 20.0;
  // Lognormal job duration parameters and truncation bounds.
  double job_mu = 5.5;
  double job_sigma = 1.4;
  Time min_job = 1;
  Time max_job = 30000;
  // Non-stationary load modulation: the window is divided into segments of
  // length jitter_period and the session rate is multiplied by an
  // independent lognormal(0, load_jitter_sigma) factor per segment. Real
  // archive traces alternate between calm and overloaded episodes; fairness
  // debt accumulates during each overload episode, which is what makes the
  // paper's unfairness ratios grow with the trace duration (Table 2).
  double load_jitter_sigma = 0.35;
  Time jitter_period = 25000;
  // Heavy-tailed per-user heterogeneity, the property of real archive
  // traces that drives organization-level load imbalance (a handful of
  // power users dominate; orgs inheriting them demand far more than their
  // machine share). Per-user activity weights are lognormal(0,
  // user_weight_sigma), normalized to keep the window's offered load; each
  // user also has a personal job-size offset normal(0, user_mu_sigma)
  // added to job_mu.
  double user_weight_sigma = 1.6;
  double user_mu_sigma = 0.6;

  // Mean offered load (fraction of capacity) implied by the parameters,
  // ignoring truncation and jitter: users * rate * batch * E[duration] /
  // machines.
  double offered_load() const;
};

// Presets matching the shape of the paper's four archives. `scale` divides
// the processor count (users, durations and offered load are preserved);
// the two biggest systems default to 1/16 of their real size so that the
// exponential REF reference stays laptop-feasible — pass scale = 1 for the
// full platform.
SyntheticSpec preset_lpc_egee();                  // 70 CPUs, 56 users
SyntheticSpec preset_pik_iplex(double scale);     // 2560 CPUs, 225 users
SyntheticSpec preset_ricc(double scale);          // 8192 CPUs, 176 users
SyntheticSpec preset_sharcnet_whale(double scale);// 3072 CPUs, 154 users
// All four with the bench suite's default scaling.
std::vector<SyntheticSpec> default_presets(double scale);

// Generates one workload window of the given duration: jobs with submit
// times in [0, duration). Deterministic given the seed.
SwfTrace generate_window(const SyntheticSpec& spec, Time duration,
                         std::uint64_t seed);

// Convenience: generate a window and map it onto a consortium of `orgs`
// organizations (Zipf machine split with exponent `zipf_s`; uniform user
// assignment).
Instance make_synthetic_instance(const SyntheticSpec& spec, std::uint32_t orgs,
                                 Time duration, MachineSplit split,
                                 double zipf_s, std::uint64_t seed);

// The second half of make_synthetic_instance: maps an already-generated
// window onto a consortium. `seed` is the same seed the window was generated
// from; the assignment draws from an independently mixed stream, so
// splitting generation from assignment is bit-identical to the one-shot
// call. This is what lets the sweep engine's workload cache reuse one
// generated window across axis points that only reshape the consortium
// (orgs / split / zipf-s).
Instance assign_synthetic_window(const SyntheticSpec& spec,
                                 const SwfTrace& window, std::uint32_t orgs,
                                 MachineSplit split, double zipf_s,
                                 std::uint64_t seed);

// Estimated heap footprint of a generated window, for cache accounting.
std::size_t window_bytes(const SwfTrace& window);

}  // namespace fairsched
