#include "workload/assignment.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace fairsched {

std::vector<std::uint32_t> split_machines(std::uint32_t total, std::uint32_t k,
                                          MachineSplit split, double zipf_s,
                                          Rng& rng) {
  if (k == 0) throw std::invalid_argument("split_machines: k must be > 0");
  if (total < k) {
    throw std::invalid_argument(
        "split_machines: need at least one machine per organization");
  }
  std::vector<double> weight(k, 1.0);
  if (split == MachineSplit::kZipf) {
    for (std::uint32_t i = 0; i < k; ++i) {
      weight[i] = std::pow(static_cast<double>(i + 1), -zipf_s);
    }
  }
  double weight_sum = 0.0;
  for (double w : weight) weight_sum += w;

  // Largest-remainder apportionment with a floor of one machine each.
  std::vector<std::uint32_t> counts(k, 1);
  std::uint32_t remaining = total - k;
  std::vector<double> exact(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    exact[i] = static_cast<double>(remaining) * weight[i] / weight_sum;
    counts[i] += static_cast<std::uint32_t>(exact[i]);
  }
  std::uint32_t assigned = 0;
  for (std::uint32_t c : counts) assigned += c;
  // Distribute the rounding leftovers by largest fractional part.
  std::vector<std::uint32_t> order(k);
  for (std::uint32_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double fa = exact[a] - std::floor(exact[a]);
    const double fb = exact[b] - std::floor(exact[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  });
  for (std::uint32_t i = 0; assigned < total; ++i) {
    counts[order[i % k]]++;
    assigned++;
  }

  // Which organization gets the big Zipf head is randomized so repeated
  // instances do not always favor organization 0.
  rng.shuffle(counts);
  return counts;
}

std::vector<OrgId> assign_users(std::uint32_t num_users, std::uint32_t k,
                                Rng& rng) {
  if (k == 0) throw std::invalid_argument("assign_users: k must be > 0");
  std::vector<std::uint32_t> shuffled = rng.permutation(num_users);
  std::vector<OrgId> owner(num_users, 0);
  for (std::uint32_t pos = 0; pos < num_users; ++pos) {
    owner[shuffled[pos]] = static_cast<OrgId>(pos % k);
  }
  return owner;
}

Instance instance_from_swf(const SwfTrace& trace, std::uint32_t orgs,
                           std::uint32_t total_machines, MachineSplit split,
                           double zipf_s, std::uint64_t seed) {
  Rng rng(seed);
  const SwfTrace seq = trace.expanded_to_sequential();

  // Stable user numbering by first appearance; unknown users become fresh
  // pseudo-users so their jobs still land somewhere deterministic.
  std::map<std::int64_t, std::uint32_t> user_index;
  std::uint32_t next_user = 0;
  std::vector<std::uint32_t> job_user;
  job_user.reserve(seq.jobs.size());
  std::int64_t pseudo = -1;
  for (const SwfJob& j : seq.jobs) {
    const std::int64_t uid = j.user >= 0 ? j.user : pseudo--;
    auto [it, inserted] = user_index.emplace(uid, next_user);
    if (inserted) ++next_user;
    job_user.push_back(it->second);
  }

  const std::vector<OrgId> user_org = assign_users(next_user, orgs, rng);
  const std::vector<std::uint32_t> machines =
      split_machines(total_machines, orgs, split, zipf_s, rng);

  InstanceBuilder builder;
  for (std::uint32_t u = 0; u < orgs; ++u) {
    builder.add_org("org" + std::to_string(u), machines[u]);
  }
  for (std::size_t i = 0; i < seq.jobs.size(); ++i) {
    const SwfJob& j = seq.jobs[i];
    builder.add_job(user_org[job_user[i]], j.submit, j.run_time);
  }
  return std::move(builder).build();
}

par::ParallelInstance parallel_instance_from_swf(const SwfTrace& trace,
                                                 std::uint32_t orgs,
                                                 std::uint32_t total_machines,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  // User numbering by first appearance across the *kept* jobs, matching
  // the sequential path's behaviour.
  std::map<std::int64_t, std::uint32_t> user_index;
  std::uint32_t next_user = 0;
  std::vector<std::uint32_t> job_user;
  std::vector<const SwfJob*> kept;
  std::int64_t pseudo = -1;
  for (const SwfJob& j : trace.jobs) {
    if (j.run_time <= 0 || j.processors == 0) continue;
    const std::int64_t uid = j.user >= 0 ? j.user : pseudo--;
    auto [it, inserted] = user_index.emplace(uid, next_user);
    if (inserted) ++next_user;
    job_user.push_back(it->second);
    kept.push_back(&j);
  }
  const std::vector<OrgId> user_org = assign_users(next_user, orgs, rng);
  // One machine pool; organization machine counts still matter for shares,
  // so split them the same way (uniform here: widths already skew load).
  const std::vector<std::uint32_t> machines =
      split_machines(total_machines, orgs, MachineSplit::kUniform, 1.0, rng);

  par::ParallelInstance inst;
  for (std::uint32_t u = 0; u < orgs; ++u) {
    inst.add_org(machines[u]);
  }
  for (std::size_t i = 0; i < kept.size(); ++i) {
    inst.add_job(user_org[job_user[i]], kept[i]->submit, kept[i]->run_time,
                 kept[i]->processors);
  }
  inst.finalize();
  return inst;
}

}  // namespace fairsched
