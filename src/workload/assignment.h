#pragma once

// Mapping a trace onto a consortium (Section 7.2 of the paper):
//  * processors are assigned to organizations so the counts follow a Zipf
//    or a uniform distribution (every organization keeps at least one),
//  * user identifiers are distributed uniformly between organizations, and
//    every job goes to the organization of its user.

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "parallel/parallel.h"
#include "util/rng.h"
#include "workload/swf.h"

namespace fairsched {

enum class MachineSplit { kUniform, kZipf };

// Splits `total` machines across k organizations. Every organization
// receives at least one machine (requires total >= k). kZipf makes counts
// proportional to rank^-s with rank = org index + 1.
std::vector<std::uint32_t> split_machines(std::uint32_t total, std::uint32_t k,
                                          MachineSplit split, double zipf_s,
                                          Rng& rng);

// Uniformly partitions `num_users` users across k organizations: users are
// shuffled and dealt round-robin, so org sizes differ by at most one.
// Returns user -> org.
std::vector<OrgId> assign_users(std::uint32_t num_users, std::uint32_t k,
                                Rng& rng);

// Builds an Instance from an SWF trace: expands parallel jobs to sequential
// copies, distributes users uniformly over `orgs` organizations and splits
// `total_machines` machines between them. Jobs of unknown users go to the
// organization of a fresh pseudo-user. Deterministic given the seed.
Instance instance_from_swf(const SwfTrace& trace, std::uint32_t orgs,
                           std::uint32_t total_machines, MachineSplit split,
                           double zipf_s, std::uint64_t seed);

// Same mapping but *preserving* job widths, for the rigid parallel jobs
// extension (src/parallel): jobs keep their processor requirement instead
// of being expanded into sequential copies (jobs with unknown runtime or
// width are dropped, as in the sequential path). The user->org assignment
// and machine split use the same seed derivation as instance_from_swf, so
// the two views of one trace are aligned.
par::ParallelInstance parallel_instance_from_swf(
    const SwfTrace& trace, std::uint32_t orgs, std::uint32_t total_machines,
    std::uint64_t seed);

}  // namespace fairsched
