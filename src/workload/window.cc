#include "workload/window.h"

#include <stdexcept>

#include "util/rng.h"

namespace fairsched {

SwfTrace slice_window(const SwfTrace& trace, Time t_start, Time duration) {
  if (t_start < 0 || duration <= 0) {
    throw std::invalid_argument("slice_window: invalid window bounds");
  }
  SwfTrace out;
  out.header = trace.header;
  out.header.push_back(" window [" + std::to_string(t_start) + ", " +
                       std::to_string(t_start + duration) + ")");
  for (const SwfJob& j : trace.jobs) {
    if (j.submit < t_start || j.submit >= t_start + duration) continue;
    SwfJob shifted = j;
    shifted.submit -= t_start;
    out.jobs.push_back(shifted);
  }
  return out;
}

std::vector<SwfTrace> random_windows(const SwfTrace& trace, Time duration,
                                     std::size_t count, std::uint64_t seed) {
  if (duration <= 0) {
    throw std::invalid_argument("random_windows: duration must be positive");
  }
  Time span = 0;
  for (const SwfJob& j : trace.jobs) span = std::max(span, j.submit);
  const Time max_start = span > duration ? span - duration : 0;
  Rng rng(seed);
  std::vector<SwfTrace> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Time start =
        max_start > 0
            ? static_cast<Time>(rng.uniform_u64(
                  static_cast<std::uint64_t>(max_start) + 1))
            : 0;
    out.push_back(slice_window(trace, start, duration));
  }
  return out;
}

}  // namespace fairsched
