#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace fairsched {

double SyntheticSpec::offered_load() const {
  const double mean_duration = std::exp(job_mu + job_sigma * job_sigma / 2.0);
  return static_cast<double>(users) * session_rate * mean_batch *
         mean_duration / static_cast<double>(total_machines);
}

namespace {

// Sets the session rate so the spec's offered load equals `load`.
void calibrate_load(SyntheticSpec& spec, double load) {
  const double mean_duration =
      std::exp(spec.job_mu + spec.job_sigma * spec.job_sigma / 2.0);
  spec.session_rate = load * static_cast<double>(spec.total_machines) /
                      (static_cast<double>(spec.users) * spec.mean_batch *
                       mean_duration);
}

std::uint32_t scaled(std::uint32_t machines, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("preset scale must be positive");
  }
  const double v = static_cast<double>(machines) / scale;
  return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(v));
}

}  // namespace

SyntheticSpec preset_lpc_egee() {
  // LPC-EGEE: a small EGEE grid cluster; short grid jobs, strong bursts,
  // high contention.
  SyntheticSpec spec;
  spec.name = "LPC-EGEE";
  spec.total_machines = 70;
  spec.users = 56;
  spec.mean_batch = 8.0;
  spec.batch_spacing = 20.0;
  spec.job_mu = 5.0;
  spec.job_sigma = 1.5;
  spec.max_job = 30000;
  spec.user_weight_sigma = 1.0;
  spec.user_mu_sigma = 0.4;
  spec.load_jitter_sigma = 0.25;
  calibrate_load(spec, 0.85);
  return spec;
}

SyntheticSpec preset_pik_iplex(double scale) {
  // PIK-IPLEX: a lightly loaded system — the paper reports near-zero
  // unfairness for every algorithm on this trace.
  SyntheticSpec spec;
  spec.name = "PIK-IPLEX";
  spec.total_machines = scaled(2560, scale);
  spec.users = 225;
  spec.mean_batch = 6.0;
  spec.batch_spacing = 30.0;
  spec.job_mu = 6.0;
  spec.job_sigma = 1.3;
  spec.max_job = 60000;
  spec.user_weight_sigma = 1.4;
  spec.user_mu_sigma = 0.5;
  calibrate_load(spec, 0.45);
  return spec;
}

SyntheticSpec preset_ricc(double scale) {
  // RICC: long jobs and sustained overload — the trace on which the paper
  // measures the largest unfairness for every algorithm.
  SyntheticSpec spec;
  spec.name = "RICC";
  spec.total_machines = scaled(8192, scale);
  spec.users = 176;
  spec.mean_batch = 10.0;
  spec.batch_spacing = 15.0;
  spec.job_mu = 6.3;
  spec.job_sigma = 1.6;
  spec.max_job = 80000;
  spec.user_weight_sigma = 2.0;
  spec.user_mu_sigma = 0.7;
  spec.load_jitter_sigma = 0.45;
  calibrate_load(spec, 1.15);
  return spec;
}

SyntheticSpec preset_sharcnet_whale(double scale) {
  // SHARCNET-Whale: moderate contention.
  SyntheticSpec spec;
  spec.name = "SHARCNET-Whale";
  spec.total_machines = scaled(3072, scale);
  spec.users = 154;
  spec.mean_batch = 7.0;
  spec.batch_spacing = 25.0;
  spec.job_mu = 5.8;
  spec.job_sigma = 1.5;
  spec.max_job = 50000;
  spec.user_weight_sigma = 1.8;
  spec.user_mu_sigma = 0.6;
  calibrate_load(spec, 0.85);
  return spec;
}

std::vector<SyntheticSpec> default_presets(double scale) {
  return {preset_lpc_egee(), preset_pik_iplex(scale), preset_ricc(scale),
          preset_sharcnet_whale(scale)};
}

SwfTrace generate_window(const SyntheticSpec& spec, Time duration,
                         std::uint64_t seed) {
  if (duration <= 0) {
    throw std::invalid_argument("generate_window: duration must be positive");
  }
  Rng rng(seed);
  SwfTrace trace;
  trace.header.push_back(" synthetic " + spec.name);

  if (spec.session_rate <= 0.0) {
    throw std::invalid_argument("generate_window: non-positive session rate");
  }
  // Piecewise-constant load modulation: one independent lognormal factor
  // per jitter_period segment, mimicking the calm/overload episodes of a
  // real non-stationary trace.
  const Time period =
      spec.jitter_period > 0 ? std::min(spec.jitter_period, duration)
                             : duration;
  const std::size_t segments =
      static_cast<std::size_t>((duration + period - 1) / period);
  std::vector<double> jitter(segments, 1.0);
  if (spec.load_jitter_sigma > 0.0) {
    for (double& j : jitter) {
      j = rng.lognormal(0.0, spec.load_jitter_sigma);
    }
  }

  // Heavy-tailed per-user activity: weights normalized so the window's
  // expected offered load stays at the calibrated level.
  std::vector<double> weight(spec.users, 1.0);
  std::vector<double> user_mu(spec.users, spec.job_mu);
  if (spec.user_weight_sigma > 0.0 || spec.user_mu_sigma > 0.0) {
    double weight_sum = 0.0;
    for (std::uint32_t user = 0; user < spec.users; ++user) {
      weight[user] = spec.user_weight_sigma > 0.0
                         ? rng.lognormal(0.0, spec.user_weight_sigma)
                         : 1.0;
      weight_sum += weight[user];
      if (spec.user_mu_sigma > 0.0) {
        user_mu[user] += spec.user_mu_sigma * rng.normal();
      }
    }
    const double norm = static_cast<double>(spec.users) / weight_sum;
    for (double& w : weight) w *= norm;
  }

  std::int64_t next_id = 1;
  for (std::uint32_t user = 0; user < spec.users; ++user) {
    for (std::size_t seg = 0; seg < segments; ++seg) {
      const double user_rate = spec.session_rate * jitter[seg] * weight[user];
      if (user_rate <= 0.0) continue;
      const double seg_start = static_cast<double>(seg) *
                               static_cast<double>(period);
      const double seg_end =
          std::min(static_cast<double>(duration),
                   seg_start + static_cast<double>(period));
      double t = seg_start + rng.exponential(user_rate);
      while (t < seg_end) {
        const std::uint64_t batch = rng.geometric(1.0 / spec.mean_batch);
        double release = t;
        for (std::uint64_t b = 0; b < batch; ++b) {
          if (b > 0) release += rng.exponential(1.0 / spec.batch_spacing);
          if (release >= static_cast<double>(duration)) break;
          const double raw = rng.lognormal(user_mu[user], spec.job_sigma);
          const Time run = std::clamp<Time>(static_cast<Time>(raw),
                                            spec.min_job, spec.max_job);
          SwfJob job;
          job.job_id = next_id++;
          job.submit = static_cast<Time>(release);
          job.run_time = run;
          job.processors = 1;
          job.user = user;
          trace.jobs.push_back(job);
        }
        t += rng.exponential(user_rate);
      }
    }
  }
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const SwfJob& a, const SwfJob& b) {
                     return a.submit < b.submit;
                   });
  return trace;
}

Instance make_synthetic_instance(const SyntheticSpec& spec, std::uint32_t orgs,
                                 Time duration, MachineSplit split,
                                 double zipf_s, std::uint64_t seed) {
  const SwfTrace trace = generate_window(spec, duration, seed);
  return assign_synthetic_window(spec, trace, orgs, split, zipf_s, seed);
}

Instance assign_synthetic_window(const SyntheticSpec& spec,
                                 const SwfTrace& window, std::uint32_t orgs,
                                 MachineSplit split, double zipf_s,
                                 std::uint64_t seed) {
  return instance_from_swf(window, orgs, spec.total_machines, split, zipf_s,
                           mix_seed(seed, 0x5eedA551u));
}

std::size_t window_bytes(const SwfTrace& window) {
  std::size_t bytes = sizeof(SwfTrace) + window.jobs.size() * sizeof(SwfJob);
  for (const std::string& line : window.header) {
    bytes += sizeof(std::string) + line.capacity();
  }
  return bytes;
}

}  // namespace fairsched
