#pragma once

// Window slicing for traces: the paper's experiments run on "100 instances
// taken as parts of the original workload" — random windows of a fixed
// duration cut out of a long trace, with submit times re-based to 0.

#include <cstdint>
#include <vector>

#include "core/types.h"
#include "workload/swf.h"

namespace fairsched {

// Jobs with submit in [t_start, t_start + duration), shifted by -t_start.
// Header is preserved with a provenance note appended.
SwfTrace slice_window(const SwfTrace& trace, Time t_start, Time duration);

// `count` windows of the given duration with uniformly random start times
// over the trace's submit span (deterministic given the seed). If the trace
// is shorter than `duration`, every window starts at 0.
std::vector<SwfTrace> random_windows(const SwfTrace& trace, Time duration,
                                     std::size_t count, std::uint64_t seed);

}  // namespace fairsched
