#!/usr/bin/env python3
"""Check that intra-repo Markdown links resolve.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, and verifies that relative targets
exist on disk (anchors and external URLs are skipped; `#fragment` suffixes
are stripped before the existence check). Exits nonzero listing every
broken link. Run from anywhere inside the repository:

    python3 scripts/check_markdown_links.py
"""

import os
import re
import subprocess
import sys
import urllib.parse

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


def markdown_files(root: str) -> list:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        capture_output=True,
        text=True,
        check=True,
        cwd=root,
    )
    return [line for line in out.stdout.splitlines() if line]


def is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def check_file(root: str, md_path: str) -> list:
    with open(os.path.join(root, md_path), encoding="utf-8") as handle:
        text = handle.read()
    # Links inside fenced code blocks are examples, not navigation.
    text = FENCE.sub("", text)
    targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
    broken = []
    for target in targets:
        target = target.strip("<>")
        if is_external(target) or target.startswith("#"):
            continue
        path = urllib.parse.unquote(target.split("#", 1)[0])
        if not path:
            continue
        base = root if path.startswith("/") else os.path.dirname(
            os.path.join(root, md_path))
        resolved = os.path.normpath(os.path.join(base, path.lstrip("/")))
        if not os.path.exists(resolved):
            broken.append((md_path, target))
    return broken


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    broken = []
    for md_path in files:
        broken.extend(check_file(root, md_path))
    if broken:
        for md_path, target in broken:
            print(f"BROKEN  {md_path}: ({target})")
        print(f"\n{len(broken)} broken link(s) across {len(files)} files.")
        return 1
    print(f"OK: all intra-repo links resolve across {len(files)} files.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
