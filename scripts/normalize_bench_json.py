#!/usr/bin/env python3
"""Canonicalize a BENCH_*.json for determinism diffs.

The sweep engine's determinism contract covers the statistical output;
wall-clock measurements and cache/shard accounting are observations of one
particular execution and legitimately differ between a whole run, a
sharded+merged run, and a disk-warm run. This script drops exactly those
volatile fields and re-dumps the rest with sorted keys, so two equivalent
runs must compare byte-equal:

    diff <(normalize_bench_json.py a.json) <(normalize_bench_json.py b.json)

Used by the shard-equivalence CI job next to the (stricter) raw byte diff
of the CSV outputs, which contain no volatile fields in the first place.
"""

import json
import sys

# Top-level fields outside the deterministic contract.
VOLATILE_TOP = {"baseline_wall_ms", "total_wall_ms", "elapsed_ms",
                "cache", "shards"}
# Per-cell fields outside it.
VOLATILE_CELL = {"wall_ms"}


def canonicalize(path):
    with open(path) as handle:
        data = json.load(handle)
    for key in VOLATILE_TOP:
        data.pop(key, None)
    for cell in data.get("cells", []):
        for key in VOLATILE_CELL:
            cell.pop(key, None)
    return json.dumps(data, indent=2, sort_keys=True)


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} BENCH_file.json", file=sys.stderr)
        return 2
    print(canonicalize(sys.argv[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
