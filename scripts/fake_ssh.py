#!/usr/bin/env python3
"""Hermetic ssh stand-in for dispatch tests and CI.

Usage (what SshTransport generates):

    fake_ssh.py [ssh options...] HOST COMMAND [ARGS...]

Leading ``-`` options are ignored, the first non-option argument is the
host name, and the rest is the remote command — which is simply exec'd
locally, stdin/stdout/stderr attached, so the "remote" worker is a local
process and the whole dispatch protocol runs for real without a network.

Failure injection (how CI induces a worker kill and a hang without
patching the dispatcher): set ``FAKE_SSH_STATE_DIR`` to a scratch
directory, then

    FAKE_SSH_KILL_HOST=hostb   the first connection to hostb spawns the
                               worker, waits FAKE_SSH_KILL_AFTER_MS
                               (default 250), kills it, and exits 255 —
                               ssh's "connection lost" exit code;
    FAKE_SSH_HANG_HOST=hostc   the first connection to hostc swallows the
                               request and sleeps FAKE_SSH_HANG_MS
                               (default 3600000), so only the
                               dispatcher's --timeout-ms can reclaim the
                               shard.

Each injection fires once: a marker file in FAKE_SSH_STATE_DIR records
that the host already failed, so retries against the same host succeed
and the run converges. Without FAKE_SSH_STATE_DIR the injections fire on
every connection (useful for testing give-up paths).
"""

import os
import signal
import subprocess
import sys
import time


def claim_injection(kind: str, host: str) -> bool:
    """True when this connection should inject `kind` against `host`."""
    if os.environ.get(f"FAKE_SSH_{kind}_HOST") != host:
        return False
    state_dir = os.environ.get("FAKE_SSH_STATE_DIR")
    if not state_dir:
        return True
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(state_dir, f"{kind.lower()}-{host}")
    try:
        # O_EXCL: exactly one connection claims the marker, even when the
        # dispatcher races several attempts against the same host.
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def main() -> int:
    args = sys.argv[1:]
    while args and args[0].startswith("-"):
        args.pop(0)
    if len(args) < 2:
        print("fake_ssh: usage: fake_ssh.py [options] HOST COMMAND...",
              file=sys.stderr)
        return 255
    host, command = args[0], args[1:]

    if claim_injection("HANG", host):
        print(f"fake_ssh: hanging connection to {host}", file=sys.stderr)
        # Swallow the request so the worker side never runs, then outlive
        # any reasonable --timeout-ms; the dispatcher kills us.
        try:
            sys.stdin.buffer.read()
        except OSError:
            pass
        time.sleep(int(os.environ.get("FAKE_SSH_HANG_MS", "3600000")) / 1000)
        return 255

    if claim_injection("KILL", host):
        delay = int(os.environ.get("FAKE_SSH_KILL_AFTER_MS", "250")) / 1000
        print(f"fake_ssh: will kill {host} worker after {delay:.3f}s",
              file=sys.stderr)
        proc = subprocess.Popen(command)
        time.sleep(delay)
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()
        return 255

    # The normal path: become the worker. exec keeps the process tree
    # flat, so the dispatcher's timeout kill reaches the worker itself.
    try:
        os.execvp(command[0], command)
    except OSError as err:
        print(f"fake_ssh: cannot exec {command[0]}: {err}", file=sys.stderr)
        return 127


if __name__ == "__main__":
    sys.exit(main())
