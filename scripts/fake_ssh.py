#!/usr/bin/env python3
"""Hermetic ssh stand-in for dispatch tests and CI.

Usage (what SshTransport generates):

    fake_ssh.py [ssh options...] HOST COMMAND [ARGS...]

Leading ``-`` options are ignored, the first non-option argument is the
host name, and the rest is the remote command — which is simply exec'd
locally, stdin/stdout/stderr attached, so the "remote" worker is a local
process and the whole dispatch protocol runs for real without a network.

Failure injection (how CI induces a worker kill and a hang without
patching the dispatcher): set ``FAKE_SSH_STATE_DIR`` to a scratch
directory, then

    FAKE_SSH_KILL_HOST=hostb   the first connection to hostb spawns the
                               worker, waits FAKE_SSH_KILL_AFTER_MS
                               (default 250), kills it, and exits 255 —
                               ssh's "connection lost" exit code;
    FAKE_SSH_HANG_HOST=hostc   the first connection to hostc swallows the
                               request and sleeps FAKE_SSH_HANG_MS
                               (default 3600000), so only the
                               dispatcher's --timeout-ms can reclaim the
                               shard.

Persistent-session injections (protocol v2, `shard-worker --session`):
these run the worker under a byte-relaying proxy that counts the
artifact frames the session serves, so failures land at exact points of
a live session instead of at connection time. All three honor
``FAKE_SSH_SESSION_AFTER_SHARDS`` (default 1) as the count of fully
served shards before the injection fires:

    FAKE_SSH_SESSION_KILL_HOST=hostb      kill the session worker right
                                          after the Nth artifact frame is
                                          relayed (clean frame boundary,
                                          dead session);
    FAKE_SSH_SESSION_TRUNCATE_HOST=hostb  relay only the first half of
                                          the (N+1)th frame, then kill —
                                          a mid-frame disconnect;
    FAKE_SSH_SESSION_HANG_HOST=hostc      stop relaying after the Nth
                                          frame and sleep
                                          FAKE_SSH_HANG_MS — a straggler
                                          that only --timeout-ms or
                                          speculative re-execution can
                                          absorb.

Each injection fires once: a marker file in FAKE_SSH_STATE_DIR records
that the host already failed, so retries against the same host succeed
and the run converges. Without FAKE_SSH_STATE_DIR the injections fire on
every connection (useful for testing give-up paths).
"""

import os
import signal
import subprocess
import sys
import threading
import time


def claim_injection(kind: str, host: str) -> bool:
    """True when this connection should inject `kind` against `host`."""
    if os.environ.get(f"FAKE_SSH_{kind}_HOST") != host:
        return False
    state_dir = os.environ.get("FAKE_SSH_STATE_DIR")
    if not state_dir:
        return True
    os.makedirs(state_dir, exist_ok=True)
    marker = os.path.join(state_dir, f"{kind.lower()}-{host}")
    try:
        # O_EXCL: exactly one connection claims the marker, even when the
        # dispatcher races several attempts against the same host.
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def scan_frame(buf: bytes, start: int):
    """One past the end of the session frame starting at `start`, or None
    when the buffer does not yet hold the whole frame. Line-oriented with
    `payload <n>` byte skips — the python twin of scan_session_frame
    (src/dist/protocol.cc), lenient where the C++ scanner is strict."""
    i = start
    while True:
        j = buf.find(b"\n", i)
        if j < 0:
            return None
        line = buf[i:j]
        if line == b"end":
            return j + 1
        if line.startswith(b"payload ") or line.startswith(b"config "):
            try:
                size = int(line.split()[-1])
            except ValueError:
                size = 0
            i = j + 1 + size
            if i > len(buf):
                return None
        else:
            i = j + 1


def pump_stdin(proc: subprocess.Popen) -> None:
    """Dispatcher stdin -> session worker stdin, byte for byte."""
    try:
        while True:
            chunk = sys.stdin.buffer.read1(65536)
            if not chunk:
                break
            proc.stdin.write(chunk)
            proc.stdin.flush()
    except (OSError, ValueError):
        pass
    try:
        proc.stdin.close()
    except OSError:
        pass


def run_session_proxy(command, mode: str, host: str) -> int:
    """Relays a `shard-worker --session` conversation, injecting `mode`
    ("KILL" | "TRUNCATE" | "HANG") after FAKE_SSH_SESSION_AFTER_SHARDS
    fully served artifact frames."""
    after = int(os.environ.get("FAKE_SSH_SESSION_AFTER_SHARDS", "1"))
    print(f"fake_ssh: session {mode.lower()} on {host} after {after} "
          f"shard(s)", file=sys.stderr)
    proc = subprocess.Popen(command, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE)
    threading.Thread(target=pump_stdin, args=(proc,), daemon=True).start()
    out = sys.stdout.buffer
    buf = b""
    served = 0
    try:
        while True:
            chunk = proc.stdout.read1(65536)
            if not chunk:
                out.flush()
                return proc.wait()
            buf += chunk
            while True:
                extent = scan_frame(buf, 0)
                if extent is None:
                    break
                frame = buf[:extent]
                buf = buf[extent:]
                is_artifact = frame.startswith(b"fairsched-shard-artifact ")
                if is_artifact and served == after:
                    if mode == "TRUNCATE":
                        # A mid-frame disconnect: half the frame, then gone.
                        out.write(frame[: len(frame) // 2])
                        out.flush()
                    proc.kill()
                    proc.wait()
                    return 255
                out.write(frame)
                out.flush()
                if is_artifact:
                    served += 1
                    if served == after and mode != "TRUNCATE":
                        if mode == "HANG":
                            # A straggler: the session stays up but goes
                            # silent; only the dispatcher's timeout or a
                            # speculative duplicate reclaims the shard.
                            hang_ms = int(
                                os.environ.get("FAKE_SSH_HANG_MS",
                                               "3600000"))
                            time.sleep(hang_ms / 1000)
                        proc.kill()
                        proc.wait()
                        return 255
    except OSError:
        proc.kill()
        proc.wait()
        return 255


def main() -> int:
    args = sys.argv[1:]
    while args and args[0].startswith("-"):
        args.pop(0)
    if len(args) < 2:
        print("fake_ssh: usage: fake_ssh.py [options] HOST COMMAND...",
              file=sys.stderr)
        return 255
    host, command = args[0], args[1:]

    if claim_injection("HANG", host):
        print(f"fake_ssh: hanging connection to {host}", file=sys.stderr)
        # Swallow the request so the worker side never runs, then outlive
        # any reasonable --timeout-ms; the dispatcher kills us.
        try:
            sys.stdin.buffer.read()
        except OSError:
            pass
        time.sleep(int(os.environ.get("FAKE_SSH_HANG_MS", "3600000")) / 1000)
        return 255

    if claim_injection("KILL", host):
        delay = int(os.environ.get("FAKE_SSH_KILL_AFTER_MS", "250")) / 1000
        print(f"fake_ssh: will kill {host} worker after {delay:.3f}s",
              file=sys.stderr)
        proc = subprocess.Popen(command)
        time.sleep(delay)
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()
        return 255

    for mode in ("KILL", "TRUNCATE", "HANG"):
        if claim_injection(f"SESSION_{mode}", host):
            return run_session_proxy(command, mode, host)

    # The normal path: become the worker. exec keeps the process tree
    # flat, so the dispatcher's timeout kill reaches the worker itself.
    try:
        os.execvp(command[0], command)
    except OSError as err:
        print(f"fake_ssh: cannot exec {command[0]}: {err}", file=sys.stderr)
        return 127


if __name__ == "__main__":
    sys.exit(main())
