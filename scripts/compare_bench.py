#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json sweep baselines.

CI runs the --smoke matrix twice — workload/baseline cache on (default) and
off (--no-cache) — and feeds both JSON directories here:

    compare_bench.py record --cached DIR --uncached DIR --out bench/baselines
    compare_bench.py check  --cached DIR --uncached DIR \
        --baselines bench/baselines [--tolerance 0.25]

`record` distills each sweep pair into a committed baseline under
bench/baselines/. `check` fails (exit 1) when the current run regresses.

What is compared, and why these metrics:

* runs — the matrix shape. An accidental shrink of the smoke matrix would
  make every timing look great; compared exactly.
* cache hit_rate — deterministic for a fixed sweep plan under the default
  budget (no evictions), so compared exactly (tiny epsilon). A drop means
  the prefix planner stopped sharing work.
* speedup = uncached total_wall_ms / cached total_wall_ms — the cache's
  work-based win. Both sides run the same instruction mix on the same
  machine, so the *ratio* transfers across machines far better than
  absolute wall times do; it degrading by more than --tolerance (default
  25%) is the perf regression this gate exists to catch. Gated only on
  sweeps whose baseline replays simulation runs from the cache — where
  nothing substantial is shared the ratio is timing noise around 1.0,
  recorded for the trajectory but not gated. Absolute wall times are
  still recorded in the baselines and artifacts so the BENCH_*.json
  trajectory stays inspectable.
* elapsed_speedup — same ratio over driver wall clock; recorded and
  reported for the artifact trajectory, but not hard-gated: a smoke sweep
  elapses ~30 ms, so a single scheduling hiccup on a shared runner could
  swing the ratio arbitrarily.

MIN_SPEEDUP holds hard, machine-independent floors over the work-based
speedup. fairshare-decay is the acceptance bar for the prefix cache: four
half-life values share one instance + REF baseline, so cache-on must do
at least 2x less measured work than --no-cache.
"""

import argparse
import json
import math
import pathlib
import sys

SWEEPS = [
    "table1",
    "table2",
    "utilization",
    "rand-convergence",
    "fig10",
    "horizon-growth",
    "fairshare-decay",
    # The config-defined policy smoke (bench/configs/custom_policy.cfg):
    # CI runs `custom --config=... --smoke`, so the open policy API's
    # registry/composition path sits under the same perf gate.
    "custom",
    # The strategic-deviation smoke (fairsched_exp strategy --smoke): every
    # deviation of a cell declares a different instance, so no simulation
    # runs replay (replayed_runs = 0) — but the honest window generation and
    # REF baseline are shared across the whole deviation grid, which the
    # exact hit_rate gate plus the MIN_SPEEDUP floor below verify.
    "strategy",
]

# Hard work-based speedup floors (sweep -> min uncached/cached
# total_wall_ms ratio), enforced by `check` independent of the recorded
# baseline.
MIN_SPEEDUP = {
    "fairshare-decay": 2.0,
    # A warm deviation grid must do measurably less work than a cold one:
    # one window generation + one REF honest baseline per cell instead of
    # one per deviation. The policy runs themselves dominate and never
    # replay, so the floor is modest (observed ~1.3-1.45x).
    "strategy": 1.1,
}

HIT_RATE_EPSILON = 1e-6

# The ref-scaling engine microbench (BENCH_ref-scaling.json, written by
# `fairsched_exp ref-scaling --smoke`) is compared differently from the
# sweep pairs above: its event and decision counts are deterministic for
# the smoke configuration — the engine's unified event stream and decision
# sequence are part of the equivalence contract — so those are gated
# exactly, while the wall-clock throughput only has to stay within a
# generous machine-to-machine slack factor of the recorded baseline.
REF_SCALING = "ref-scaling"
REF_SCALING_WALL_SLACK = 8.0

# The serve-mode session bench (BENCH_serve.json, written by
# `fairsched_exp serve --smoke`) follows the ref-scaling pattern: its
# counters are deterministic for the smoke configuration — the arrival
# stream is seeded and the decision stream is pinned by the serve-vs-batch
# replay contract — so they are gated exactly, while decision throughput
# and p99 latency only have to stay within generous machine-to-machine
# slack factors of the recorded baseline.
SERVE = "serve"
SERVE_THROUGHPUT_SLACK = 8.0
SERVE_LATENCY_SLACK = 16.0

# The dispatch bench (BENCH_dispatch.json, written by `fairsched_exp
# dispatch --dispatch-bench`) compares spawn-per-attempt (protocol v1)
# against persistent sessions (protocol v2) on the same sweep. Its shape
# counters (workers/shards/repeats, shards served over sessions, zero v1
# fallbacks, byte-identical CSV between modes) are deterministic and
# gated exactly. The warm-session speedup — spawn warm wall over session
# warm wall, where "warm" excludes each mode's first repeat — has a hard
# machine-independent floor: amortizing process spawn + plan rebuild +
# cache warmup across shards must win at least 2x on the smoke sweep.
# Absolute wall times only have to stay within a generous slack of the
# recorded baseline.
DISPATCH = "dispatch"
DISPATCH_MIN_WARM_SPEEDUP = 2.0
DISPATCH_WALL_SLACK = 8.0


def load_json(path, what):
    """Loads a JSON file, turning every I/O or parse failure into a clear
    error that names the offending file instead of a traceback."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as err:
        raise SystemExit(f"error: cannot read {what} {path}: {err}")
    except json.JSONDecodeError as err:
        raise SystemExit(
            f"error: {what} {path} is not valid JSON ({err}); "
            f"was the producing run killed mid-write?"
        )


def load_bench(directory, sweep):
    path = pathlib.Path(directory) / f"BENCH_{sweep}.json"
    if not path.is_file():
        raise SystemExit(
            f"error: missing bench output {path} — did the "
            f"`fairsched_exp {sweep} --smoke` run for this directory "
            f"complete?"
        )
    data = load_json(path, "bench output")
    if data.get("sweep") != sweep:
        raise SystemExit(f"error: {path} reports sweep {data.get('sweep')!r}")
    return data


def safe_ratio(numerator, denominator):
    return numerator / denominator if denominator > 0 else math.inf


def distill(cached, uncached, sweep):
    """One baseline record from a (cache-on, cache-off) BENCH pair."""
    if not cached["cache"]["enabled"]:
        raise SystemExit(f"error: {sweep}: the --cached run had its cache off")
    if uncached["cache"]["enabled"]:
        raise SystemExit(f"error: {sweep}: the --uncached run had its cache on")
    if cached["runs"] != uncached["runs"]:
        raise SystemExit(
            f"error: {sweep}: cached and uncached run counts differ "
            f"({cached['runs']} vs {uncached['runs']})"
        )
    return {
        "sweep": sweep,
        "runs": cached["runs"],
        "hit_rate": cached["cache"]["hit_rate"],
        "replayed_runs": cached["cache"]["replayed_runs"],
        "speedup": safe_ratio(
            uncached["total_wall_ms"], cached["total_wall_ms"]
        ),
        "elapsed_speedup": safe_ratio(
            uncached["elapsed_ms"], cached["elapsed_ms"]
        ),
        "cached_total_wall_ms": cached["total_wall_ms"],
        "uncached_total_wall_ms": uncached["total_wall_ms"],
        "cached_elapsed_ms": cached["elapsed_ms"],
        "uncached_elapsed_ms": uncached["elapsed_ms"],
    }


def distill_ref_scaling(bench):
    """One baseline record from a BENCH_ref-scaling.json microbench."""
    engine = bench["engine"]
    return {
        "sweep": REF_SCALING,
        "largest_orgs": bench["largest_orgs"],
        "horizon": bench["horizon"],
        "events": engine["events"],
        "decisions": engine["decisions"],
        "ref_wall_ms_per_run": bench["ref_wall_ms_per_run"],
        "engine_wall_ms": engine["wall_ms"],
        "events_per_sec": engine["events_per_sec"],
        "decisions_per_sec": engine["decisions_per_sec"],
    }


def check_ref_scaling(baseline, current):
    """Failure strings for the ref-scaling microbench pair, if any."""
    failures = []
    for key in ("largest_orgs", "horizon", "events", "decisions"):
        if current[key] != baseline[key]:
            failures.append(
                f"{REF_SCALING}: {key} changed {baseline[key]} -> "
                f"{current[key]} (the engine's event stream / decision "
                f"sequence is part of the equivalence contract; re-record "
                f"bench/baselines if the smoke config changed)"
            )
    ceiling = baseline["ref_wall_ms_per_run"] * REF_SCALING_WALL_SLACK
    if current["ref_wall_ms_per_run"] > ceiling:
        failures.append(
            f"{REF_SCALING}: wall ms/run at the largest orgs point "
            f"regressed past the {REF_SCALING_WALL_SLACK:.0f}x slack: "
            f"{current['ref_wall_ms_per_run']:.2f} > {ceiling:.2f} "
            f"(baseline {baseline['ref_wall_ms_per_run']:.2f})"
        )
    return failures


def distill_serve(bench):
    """One baseline record from a BENCH_serve.json session report."""
    latency = bench["decision_latency_ns"]
    return {
        "sweep": SERVE,
        "policy": bench["policy"],
        "source": bench["source"],
        "orgs": bench["orgs"],
        "machines": bench["machines"],
        "arrivals": bench["arrivals"],
        "engine_events": bench["engine_events"],
        "decisions": bench["decisions"],
        "completions": bench["completions"],
        "final_time": bench["final_time"],
        "peak_resident_jobs": bench["peak_resident_jobs"],
        "peak_resident_orgs": bench["peak_resident_orgs"],
        "decisions_per_sec": bench["decisions_per_sec"],
        "events_per_sec": bench["events_per_sec"],
        "latency_p50_ns": latency["p50"],
        "latency_p99_ns": latency["p99"],
    }


def check_serve(baseline, current):
    """Failure strings for the serve session bench pair, if any."""
    failures = []
    for key in (
        "policy",
        "source",
        "orgs",
        "machines",
        "arrivals",
        "engine_events",
        "decisions",
        "completions",
        "final_time",
        "peak_resident_jobs",
        "peak_resident_orgs",
    ):
        if current[key] != baseline[key]:
            failures.append(
                f"{SERVE}: {key} changed {baseline[key]} -> {current[key]} "
                f"(the serve decision stream is pinned by the replay "
                f"contract; re-record bench/baselines if the smoke config "
                f"changed)"
            )
    floor = baseline["decisions_per_sec"] / SERVE_THROUGHPUT_SLACK
    if current["decisions_per_sec"] < floor:
        failures.append(
            f"{SERVE}: decision throughput regressed past the "
            f"{SERVE_THROUGHPUT_SLACK:.0f}x slack: "
            f"{current['decisions_per_sec']:.0f}/s < {floor:.0f}/s "
            f"(baseline {baseline['decisions_per_sec']:.0f}/s)"
        )
    ceiling = baseline["latency_p99_ns"] * SERVE_LATENCY_SLACK
    if current["latency_p99_ns"] > ceiling:
        failures.append(
            f"{SERVE}: decision p99 latency regressed past the "
            f"{SERVE_LATENCY_SLACK:.0f}x slack: "
            f"{current['latency_p99_ns']}ns > {ceiling:.0f}ns "
            f"(baseline {baseline['latency_p99_ns']}ns)"
        )
    return failures


def load_dispatch_bench(directory):
    path = pathlib.Path(directory) / f"BENCH_{DISPATCH}.json"
    if not path.is_file():
        raise SystemExit(
            f"error: missing bench output {path} — did the "
            f"`fairsched_exp dispatch --dispatch-bench` run complete?"
        )
    data = load_json(path, "bench output")
    if data.get("benchmark") != DISPATCH:
        raise SystemExit(
            f"error: {path} reports benchmark {data.get('benchmark')!r}"
        )
    return data


def distill_dispatch(bench):
    """One baseline record from a BENCH_dispatch.json spawn/session pair."""
    return {
        "sweep": DISPATCH,
        "bench_sweep": bench["sweep"],
        "workers": bench["workers"],
        "shards": bench["shards"],
        "repeats": bench["repeats"],
        "spawn_warm_ms": bench["spawn_warm_ms"],
        "session_cold_ms": bench["session_cold_ms"],
        "session_warm_ms": bench["session_warm_ms"],
        "warm_speedup": bench["warm_speedup"],
        "session_opens": bench["session_opens"],
        "session_served": bench["session_served"],
        "session_fallback": bench["session_fallback"],
        "cache_hits": bench["cache_hits"],
        "cache_misses": bench["cache_misses"],
        "csv_identical": bench["csv_identical"],
    }


def check_dispatch(baseline, current):
    """Failure strings for the dispatch bench pair, if any."""
    failures = []
    for key in ("bench_sweep", "workers", "shards", "repeats"):
        if current[key] != baseline[key]:
            failures.append(
                f"{DISPATCH}: {key} changed {baseline[key]} -> "
                f"{current[key]} (re-record bench/baselines if the bench "
                f"configuration changed)"
            )
    if not current["csv_identical"]:
        failures.append(
            f"{DISPATCH}: session-mode CSV diverged from spawn-mode CSV — "
            f"the dispatch-determinism contract is broken"
        )
    if current["session_fallback"] != 0:
        failures.append(
            f"{DISPATCH}: {current['session_fallback']} attempt(s) fell "
            f"back to spawn-per-attempt — the session worker no longer "
            f"speaks protocol v2 to its own dispatcher"
        )
    expected_served = current["shards"] * current["repeats"]
    if current["session_served"] != expected_served:
        failures.append(
            f"{DISPATCH}: sessions served {current['session_served']} "
            f"shard(s), expected shards x repeats = {expected_served}"
        )
    if current["warm_speedup"] < DISPATCH_MIN_WARM_SPEEDUP:
        failures.append(
            f"{DISPATCH}: warm session speedup "
            f"{current['warm_speedup']:.2f} below the hard "
            f"{DISPATCH_MIN_WARM_SPEEDUP:.1f}x floor (spawn warm "
            f"{current['spawn_warm_ms']:.1f}ms / session warm "
            f"{current['session_warm_ms']:.1f}ms)"
        )
    ceiling = baseline["session_warm_ms"] * DISPATCH_WALL_SLACK
    if current["session_warm_ms"] > ceiling:
        failures.append(
            f"{DISPATCH}: warm session wall regressed past the "
            f"{DISPATCH_WALL_SLACK:.0f}x slack: "
            f"{current['session_warm_ms']:.1f}ms > {ceiling:.1f}ms "
            f"(baseline {baseline['session_warm_ms']:.1f}ms)"
        )
    return failures


def record(args):
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for sweep in SWEEPS:
        current = distill(
            load_bench(args.cached, sweep), load_bench(args.uncached, sweep),
            sweep,
        )
        path = out / f"{sweep}.json"
        with open(path, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"recorded {path}: runs={current['runs']} "
            f"hit_rate={current['hit_rate']:.3f} "
            f"speedup={current['speedup']:.2f} "
            f"elapsed_speedup={current['elapsed_speedup']:.2f}"
        )
    current = distill_ref_scaling(load_bench(args.cached, REF_SCALING))
    path = out / f"{REF_SCALING}.json"
    with open(path, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"recorded {path}: events={current['events']} "
        f"decisions={current['decisions']} "
        f"wall_ms_per_run={current['ref_wall_ms_per_run']:.2f}"
    )
    current = distill_serve(load_bench(args.cached, SERVE))
    path = out / f"{SERVE}.json"
    with open(path, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"recorded {path}: orgs={current['orgs']} "
        f"decisions={current['decisions']} "
        f"decisions_per_sec={current['decisions_per_sec']:.0f} "
        f"p99={current['latency_p99_ns']}ns"
    )
    current = distill_dispatch(load_dispatch_bench(args.cached))
    path = out / f"{DISPATCH}.json"
    with open(path, "w") as handle:
        json.dump(current, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"recorded {path}: workers={current['workers']} "
        f"shards={current['shards']} "
        f"warm_speedup={current['warm_speedup']:.2f}"
    )
    return 0


def check(args):
    failures = []
    for sweep in SWEEPS:
        baseline_path = pathlib.Path(args.baselines) / f"{sweep}.json"
        if not baseline_path.is_file():
            failures.append(f"{sweep}: no committed baseline {baseline_path}")
            continue
        baseline = load_json(baseline_path, "committed baseline")
        current = distill(
            load_bench(args.cached, sweep), load_bench(args.uncached, sweep),
            sweep,
        )

        if current["runs"] != baseline["runs"]:
            failures.append(
                f"{sweep}: run count changed {baseline['runs']} -> "
                f"{current['runs']} (re-record bench/baselines if intended)"
            )
        if current["hit_rate"] < baseline["hit_rate"] - HIT_RATE_EPSILON:
            failures.append(
                f"{sweep}: cache hit rate dropped "
                f"{baseline['hit_rate']:.3f} -> {current['hit_rate']:.3f}"
            )
        # The ratio gate only where the cache shares real simulation work
        # (replayed_runs > 0). Elsewhere — including fig10, whose hits are
        # only cheap window-generation reuse — both runs do essentially
        # identical work and the recorded "speedup" is timing noise around
        # 1.0; hard-gating it would fail unrelated PRs on a loaded runner.
        if baseline["replayed_runs"] > 0:
            floor = baseline["speedup"] * (1.0 - args.tolerance)
            if current["speedup"] < floor:
                failures.append(
                    f"{sweep}: cache speedup regressed >"
                    f"{args.tolerance:.0%}: {current['speedup']:.2f} < "
                    f"{floor:.2f} (baseline {baseline['speedup']:.2f})"
                )
        min_speedup = MIN_SPEEDUP.get(sweep)
        if min_speedup and current["speedup"] < min_speedup:
            failures.append(
                f"{sweep}: cache speedup {current['speedup']:.2f} below "
                f"the hard {min_speedup:.1f}x floor"
            )
        print(
            f"{sweep}: runs={current['runs']} "
            f"hit_rate={current['hit_rate']:.3f} "
            f"speedup={current['speedup']:.2f} "
            f"(baseline {baseline['speedup']:.2f}) "
            f"elapsed_speedup={current['elapsed_speedup']:.2f}"
        )

    baseline_path = pathlib.Path(args.baselines) / f"{REF_SCALING}.json"
    if not baseline_path.is_file():
        failures.append(
            f"{REF_SCALING}: no committed baseline {baseline_path}"
        )
    else:
        baseline = load_json(baseline_path, "committed baseline")
        current = distill_ref_scaling(load_bench(args.cached, REF_SCALING))
        failures.extend(check_ref_scaling(baseline, current))
        print(
            f"{REF_SCALING}: events={current['events']} "
            f"decisions={current['decisions']} "
            f"wall_ms_per_run={current['ref_wall_ms_per_run']:.2f} "
            f"(baseline {baseline['ref_wall_ms_per_run']:.2f}, "
            f"slack {REF_SCALING_WALL_SLACK:.0f}x)"
        )

    baseline_path = pathlib.Path(args.baselines) / f"{SERVE}.json"
    if not baseline_path.is_file():
        failures.append(f"{SERVE}: no committed baseline {baseline_path}")
    else:
        baseline = load_json(baseline_path, "committed baseline")
        current = distill_serve(load_bench(args.cached, SERVE))
        failures.extend(check_serve(baseline, current))
        print(
            f"{SERVE}: orgs={current['orgs']} "
            f"decisions={current['decisions']} "
            f"decisions_per_sec={current['decisions_per_sec']:.0f} "
            f"(baseline {baseline['decisions_per_sec']:.0f}, "
            f"slack {SERVE_THROUGHPUT_SLACK:.0f}x) "
            f"p99={current['latency_p99_ns']}ns"
        )

    baseline_path = pathlib.Path(args.baselines) / f"{DISPATCH}.json"
    if not baseline_path.is_file():
        failures.append(f"{DISPATCH}: no committed baseline {baseline_path}")
    else:
        baseline = load_json(baseline_path, "committed baseline")
        current = distill_dispatch(load_dispatch_bench(args.cached))
        failures.extend(check_dispatch(baseline, current))
        print(
            f"{DISPATCH}: workers={current['workers']} "
            f"shards={current['shards']} "
            f"warm_speedup={current['warm_speedup']:.2f} "
            f"(floor {DISPATCH_MIN_WARM_SPEEDUP:.1f}x, baseline "
            f"{baseline['warm_speedup']:.2f}) "
            f"session_warm_ms={current['session_warm_ms']:.1f}"
        )

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall bench baselines within tolerance")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("record", record), ("check", check)):
        p = sub.add_parser(name)
        p.add_argument("--cached", required=True,
                       help="dir of BENCH_*.json from the default (cached) run")
        p.add_argument("--uncached", required=True,
                       help="dir of BENCH_*.json from the --no-cache run")
        p.set_defaults(fn=fn)
    sub.choices["record"].add_argument("--out", default="bench/baselines")
    sub.choices["check"].add_argument("--baselines", default="bench/baselines")
    sub.choices["check"].add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()
    try:
        return args.fn(args)
    except KeyError as err:
        # A bench/baseline JSON from a different schema generation: name
        # the missing key instead of dying with a traceback.
        raise SystemExit(
            f"error: bench/baseline JSON is missing key {err} — the file "
            f"predates the current schema; re-run the smoke matrix and "
            f"re-record bench/baselines"
        )


if __name__ == "__main__":
    sys.exit(main())
