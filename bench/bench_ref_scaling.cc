// Google-benchmark: REF's running time versus the number of organizations
// (Proposition 3.4 / Corollary 3.5 — the problem is FPT in k, with the
// per-decision cost growing as ~3^k while remaining polynomial in the
// number of jobs).

#include <benchmark/benchmark.h>

#include "sched/ref.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {

void BM_RefVsOrgs(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  SyntheticSpec spec = preset_lpc_egee();
  const Time duration = 2000;
  const Instance inst = make_synthetic_instance(spec, k, duration,
                                                MachineSplit::kZipf, 1.0, 17);
  for (auto _ : state) {
    RefScheduler ref(inst);
    ref.run(duration);
    benchmark::DoNotOptimize(ref.reference_work());
  }
  state.counters["orgs"] = k;
  state.counters["jobs"] = static_cast<double>(inst.num_jobs());
}
BENCHMARK(BM_RefVsOrgs)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);

void BM_RefVsJobs(benchmark::State& state) {
  // Fixed k = 4; growing window. Runtime should scale ~linearly in jobs
  // (times log factors), demonstrating the FPT claim's polynomial part.
  const Time duration = state.range(0);
  const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 4, duration, MachineSplit::kZipf, 1.0, 23);
  for (auto _ : state) {
    RefScheduler ref(inst);
    ref.run(duration);
    benchmark::DoNotOptimize(ref.reference_work());
  }
  state.counters["jobs"] = static_cast<double>(inst.num_jobs());
}
BENCHMARK(BM_RefVsJobs)->Arg(1000)->Arg(2000)->Arg(4000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fairsched

BENCHMARK_MAIN();
