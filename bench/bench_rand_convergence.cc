// Probes Theorem 5.6 (the FPRAS): on unit-size jobs, RAND's schedule
// converges to REF's fair utility vector as the number of sampled
// permutations N grows. Prints the relative Manhattan distance
// ||psi_RAND - psi_REF|| / ||psi_REF|| per N, plus the Hoeffding sample
// bound the theorem prescribes for a few (eps, lambda) pairs.

#include <cstdio>
#include <vector>

#include "metrics/fairness.h"
#include "sched/rand_fair.h"
#include "sched/ref.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace fairsched {
namespace {

Instance unit_instance(std::uint32_t k, std::uint32_t jobs_per_org,
                       std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  for (std::uint32_t u = 0; u < k; ++u) {
    b.add_org("o" + std::to_string(u),
              1 + static_cast<std::uint32_t>(rng.uniform_u64(2)));
  }
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t i = 0; i < jobs_per_org; ++i) {
      b.add_job(u, static_cast<Time>(rng.uniform_u64(50)), 1);
    }
  }
  return std::move(b).build();
}

}  // namespace
}  // namespace fairsched

int main(int argc, char** argv) {
  using namespace fairsched;
  const Flags flags(argc, argv);
  const std::uint32_t k = static_cast<std::uint32_t>(flags.get_int("orgs", 5));
  const std::uint32_t jobs =
      static_cast<std::uint32_t>(flags.get_int("jobs-per-org", 60));
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 5));
  const Time horizon = flags.get_int("duration", 150);

  std::printf(
      "RAND convergence (Thm 5.6 / FPRAS): unit jobs, %u orgs, %u jobs/org, "
      "horizon %lld, %zu trials per N\n\n",
      k, jobs, static_cast<long long>(horizon), trials);

  AsciiTable table({"N (samples)", "rel. distance avg", "rel. distance max"});
  for (std::size_t n : {1, 2, 5, 15, 75, 200, 600}) {
    StatsAccumulator acc;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const Instance inst = unit_instance(k, jobs, 100 + trial);
      RefScheduler ref(inst);
      ref.run(horizon);
      RandScheduler rand(inst, RandOptions{n, 5000 + trial});
      rand.run(horizon);
      acc.add(relative_distance(rand.utilities2(), ref.utilities2()));
    }
    table.add_row({std::to_string(n),
                   AsciiTable::format_double(acc.mean(), 5),
                   AsciiTable::format_double(acc.max(), 5)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nHoeffding sample bounds N = ceil(k^2/eps^2 ln(k/(1-l))):\n");
  AsciiTable bounds({"k", "eps", "lambda", "N"});
  for (std::uint32_t kk : {3u, 5u, 10u}) {
    for (double eps : {0.5, 0.1}) {
      for (double lambda : {0.9, 0.99}) {
        bounds.add_row({std::to_string(kk), AsciiTable::format_double(eps, 2),
                        AsciiTable::format_double(lambda, 2),
                        std::to_string(rand_theorem_samples(kk, eps, lambda))});
      }
    }
  }
  std::fputs(bounds.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape: the relative distance decreases monotonically-ish "
      "with N and is already small at the paper's N = 15.\n");
  return 0;
}
