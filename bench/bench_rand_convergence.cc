// Probes Theorem 5.6 (the FPRAS): on unit-size jobs, RAND's schedule
// converges to REF's fair utility vector as the number of sampled
// permutations N grows. Prints the relative Manhattan distance per N plus
// the Hoeffding sample bound the theorem prescribes. Thin shell over the
// src/exp harness — equivalent to `fairsched_exp rand-convergence`.
//
// --instances controls the trials per N; --jobs-per-org and --duration
// shape the unit-job windows.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  ScenarioOptions options = scenario_options_from_flags(flags);
  // Back-compat with the pre-harness bench flag.
  if (flags.has("trials") && options.instances == 0) {
    options.instances = static_cast<std::size_t>(flags.get_int("trials", 5));
  }
  return run_rand_convergence_scenario(options);
}
