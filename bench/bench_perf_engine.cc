// Google-benchmark micro-benchmarks for the substrates: event-engine
// throughput, the exact Shapley solver, and the RAND scheduler's overhead
// relative to a plain policy.

#include <benchmark/benchmark.h>

#include "sched/rand_fair.h"
#include "exp/policy_registry.h"
#include "shapley/shapley.h"
#include "sim/engine.h"
#include "workload/synthetic.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

const Instance& bench_instance() {
  static const Instance inst = make_synthetic_instance(
      preset_lpc_egee(), 5, 50000, MachineSplit::kZipf, 1.0, 5);
  return inst;
}

void BM_EngineFcfs(benchmark::State& state) {
  const Instance& inst = bench_instance();
  for (auto _ : state) {
    const RunResult r =
        registry().run(inst, "fcfs", 50000, 1);
    benchmark::DoNotOptimize(r.work_done);
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(inst.num_jobs()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineFcfs)->Unit(benchmark::kMillisecond);

void BM_EngineDirectContr(benchmark::State& state) {
  const Instance& inst = bench_instance();
  for (auto _ : state) {
    const RunResult r =
        registry().run(inst, "directcontr", 50000, 1);
    benchmark::DoNotOptimize(r.work_done);
  }
}
BENCHMARK(BM_EngineDirectContr)->Unit(benchmark::kMillisecond);

void BM_RandScheduler(benchmark::State& state) {
  const Instance& inst = bench_instance();
  const std::size_t samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RandScheduler rand(inst, RandOptions{samples, 3});
    rand.run(50000);
    benchmark::DoNotOptimize(rand.work_done());
  }
  state.counters["N"] = static_cast<double>(samples);
}
BENCHMARK(BM_RandScheduler)->Arg(15)->Arg(75)->Unit(benchmark::kMillisecond);

void BM_ShapleyExact(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  auto v = [](Coalition c) {
    return static_cast<double>(c.size()) * 1.5 +
           static_cast<double>(c.mask() % 13);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(shapley_exact(k, v));
  }
}
BENCHMARK(BM_ShapleyExact)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

}  // namespace
}  // namespace fairsched

BENCHMARK_MAIN();
