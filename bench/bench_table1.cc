// Reproduces Table 1: the average unjustified delay delta_psi / p_tot per
// algorithm and workload, over `instances` windows of duration 5*10^4,
// k = 5 organizations, REF as the fairness reference.
//
// Paper defaults: 100 instances, full-size platforms. Bench defaults are
// sized for a single-core laptop run (10 instances, big archives scaled
// 1/16); raise with --instances=100 --scale=1 (or the FAIRSCHED_* env
// vars) to match the paper exactly.

#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::bench;

  const Flags flags(argc, argv);
  const CommonFlags common = parse_common_flags(flags, /*duration=*/50000,
                                                /*instances=*/10);

  const std::vector<SyntheticSpec> specs = default_presets(common.scale);
  const std::vector<AlgorithmSpec> algorithms = table_algorithms();

  std::printf(
      "Table 1: avg unjustified delay (delta_psi / p_tot), duration %lld, "
      "%zu instance(s), %u orgs, scale 1/%.0f\n",
      static_cast<long long>(common.config.duration),
      common.config.instances, common.config.orgs, common.scale);

  std::vector<std::vector<StatsAccumulator>> results;
  for (const SyntheticSpec& spec : specs) {
    std::printf("  running %-15s ...\n", spec.name.c_str());
    std::fflush(stdout);
    results.push_back(
        run_fairness_experiment(spec, algorithms, common.config));
  }
  print_fairness_table("", specs, algorithms, results);
  std::printf(
      "\nExpected shape (paper Table 1): RoundRobin worst by far; "
      "Rand/DirectContr best; FairShare between; PIK near zero; RICC "
      "largest.\n");
  return 0;
}
