// Reproduces Table 1: the average unjustified delay delta_psi / p_tot per
// algorithm and workload, k = 5 organizations, REF as the fairness
// reference. Thin shell over the src/exp harness — equivalent to
// `fairsched_exp table1`.
//
// Paper defaults: 100 instances, full-size platforms. Bench defaults are
// sized for a single-core laptop run (10 instances, big archives scaled
// 1/16); raise with --instances=100 --scale=1 (or the FAIRSCHED_* env
// vars) to match the paper exactly.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  const ScenarioOptions options = scenario_options_from_flags(flags);
  return run_sweep_scenario(make_table_sweep("table1", options), options);
}
