// Reproduces Figure 10: the effect of the number of organizations on the
// unfairness ratio delta_psi / p_tot, on the LPC-EGEE workload.
//
// The paper sweeps 2..10 organizations; REF's cost grows ~3^k, so the bench
// default stops at 7 on shortened windows — extend with --max-orgs=10
// --duration=50000 for the full figure.

#include <cstdio>

#include "bench/common.h"
#include "util/csv.h"
#include "util/table.h"

#include <iostream>

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::bench;

  const Flags flags(argc, argv);
  CommonFlags common = parse_common_flags(flags, /*duration=*/25000,
                                          /*instances=*/20);
  const std::uint32_t min_orgs =
      static_cast<std::uint32_t>(flags.get_int("min-orgs", 2));
  const std::uint32_t max_orgs =
      static_cast<std::uint32_t>(flags.get_int("max-orgs", 7));

  const SyntheticSpec spec = preset_lpc_egee();
  const std::vector<AlgorithmSpec> algorithms = table_algorithms();

  std::printf(
      "Figure 10: delta_psi / p_tot vs number of organizations "
      "(%s, duration %lld, %zu instance(s) per point)\n",
      spec.name.c_str(), static_cast<long long>(common.config.duration),
      common.config.instances);

  std::vector<std::string> header{"orgs"};
  for (const AlgorithmSpec& a : algorithms) header.push_back(a.display_name());
  AsciiTable table(header);
  CsvWriter csv(std::cout);

  std::vector<std::string> csv_header = header;
  csv.write_row(csv_header);
  for (std::uint32_t k = min_orgs; k <= max_orgs; ++k) {
    common.config.orgs = k;
    const std::vector<StatsAccumulator> stats =
        run_fairness_experiment(spec, algorithms, common.config);
    std::vector<std::string> row{std::to_string(k)};
    for (const StatsAccumulator& acc : stats) {
      row.push_back(AsciiTable::format_double(acc.mean(), 2));
    }
    csv.write_row(row);
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper Fig. 10): every series grows with the number "
      "of organizations; RoundRobin steepest, Rand/DirectContr flattest.\n");
  return 0;
}
