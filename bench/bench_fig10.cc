// Reproduces Figure 10: the effect of the number of organizations on the
// unfairness ratio delta_psi / p_tot, on the LPC-EGEE workload. Thin shell
// over the src/exp harness — equivalent to `fairsched_exp fig10`; the
// organization count is a declarative sweep axis, not a loop here.
//
// The paper sweeps 2..10 organizations; REF's cost grows ~3^k, so the bench
// default stops at 7 on shortened windows — extend with --max-orgs=10
// --duration=50000 for the full figure.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  const ScenarioOptions options = scenario_options_from_flags(flags);
  return run_sweep_scenario(make_fig10_sweep(options), options);
}
