// Reproduces Table 2: same pipeline as Table 1 but with 10x longer windows
// (duration 5*10^5). The paper's observation: every polynomial algorithm
// drifts further from the fair reference as the horizon grows, so the gaps
// between algorithms widen.
//
// Defaults are laptop-sized (3 instances, scaled platforms); use
// --instances=100 --scale=1 for the paper's full setting.

#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::bench;

  const Flags flags(argc, argv);
  const CommonFlags common = parse_common_flags(flags, /*duration=*/500000,
                                                /*instances=*/3);

  const std::vector<SyntheticSpec> specs = default_presets(common.scale);
  const std::vector<AlgorithmSpec> algorithms = table_algorithms();

  std::printf(
      "Table 2: avg unjustified delay (delta_psi / p_tot), duration %lld, "
      "%zu instance(s), %u orgs, scale 1/%.0f\n",
      static_cast<long long>(common.config.duration),
      common.config.instances, common.config.orgs, common.scale);

  std::vector<std::vector<StatsAccumulator>> results;
  for (const SyntheticSpec& spec : specs) {
    std::printf("  running %-15s ...\n", spec.name.c_str());
    std::fflush(stdout);
    results.push_back(
        run_fairness_experiment(spec, algorithms, common.config));
  }
  print_fairness_table("", specs, algorithms, results);
  std::printf(
      "\nExpected shape (paper Table 2): same ordering as Table 1 with "
      "larger absolute values — unfairness grows with the horizon.\n");
  return 0;
}
