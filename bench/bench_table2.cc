// Reproduces Table 2: same pipeline as Table 1 but with 10x longer windows
// (duration 5*10^5). The paper's observation: every polynomial algorithm
// drifts further from the fair reference as the horizon grows, so the gaps
// between algorithms widen. Thin shell over the src/exp harness —
// equivalent to `fairsched_exp table2`.
//
// Defaults are laptop-sized (3 instances, scaled platforms); use
// --instances=100 --scale=1 for the paper's full setting.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  const ScenarioOptions options = scenario_options_from_flags(flags);
  return run_sweep_scenario(make_table_sweep("table2", options), options);
}
