// Probes the paper's open question (Section 6 / Conclusions): does the 3/4
// greedy-utilization bound of Theorem 6.2 survive on *related* machines?
//
// Answer demonstrated here: no — with related machines the machine choice
// matters, and the worst-case greedy-to-greedy utilization ratio degrades
// without bound as the speed ratio grows ("we suspect that in case of
// related machines the loss of efficiency might be significant" —
// confirmed).
//
// Part 1: single long job, one fast + one slow machine: ratio ~ horizon /
//         (speed * time-to-finish) — sweeps the speed ratio.
// Part 2: random workloads: min utilization ratio between fastest-free and
//         slowest-free greedy placement, per speed spread.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "related/related.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

using namespace fairsched;
using related::RelatedEngine;
using related::SpeedPick;

namespace {

double ratio_single_long_job(std::uint32_t fast_speed) {
  InstanceBuilder b;
  const OrgId a = b.add_org("a", 2);
  b.add_job(a, 0, static_cast<Time>(10) * fast_speed);
  const Instance inst = std::move(b).build();
  const Time horizon = 12;

  RelatedEngine good(inst, {fast_speed, 1}, SpeedPick::kFastestFree);
  good.run(related::fcfs_selector(), horizon);
  RelatedEngine bad(inst, {fast_speed, 1}, SpeedPick::kSlowestFree);
  bad.run(related::fcfs_selector(), horizon);
  return bad.utilization() / good.utilization();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t samples =
      static_cast<std::size_t>(flags.get_int("samples", 100));

  std::printf(
      "Related machines (paper's open question): greedy utilization ratio\n"
      "under adversarial machine choice. Identical machines guarantee 3/4\n"
      "(Thm 6.2); related machines do not.\n\n");

  AsciiTable single({"fast:slow speed", "bad/good utilization ratio"});
  for (std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u}) {
    single.add_row({std::to_string(s) + ":1",
                    AsciiTable::format_double(ratio_single_long_job(s), 4)});
  }
  std::fputs(single.to_string().c_str(), stdout);
  std::printf("  -> the ratio collapses ~1/s: no constant bound exists.\n\n");

  std::printf(
      "Random workloads: worst fastest-free vs slowest-free ratio "
      "(%zu samples per spread)\n",
      samples);
  AsciiTable table({"speed spread", "worst ratio", "mean ratio"});
  Rng rng(flags.get_int("seed", 11));
  for (std::uint32_t spread : {1u, 2u, 4u, 8u}) {
    double worst = 1.0, total = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
      InstanceBuilder b;
      const std::uint32_t k =
          2 + static_cast<std::uint32_t>(rng.uniform_u64(2));
      const std::uint32_t machines =
          2 + static_cast<std::uint32_t>(rng.uniform_u64(3));
      for (std::uint32_t u = 0; u < k; ++u) {
        b.add_org("o", u == 0 ? machines : 0);
      }
      const std::size_t jobs = 6 + rng.uniform_u64(14);
      for (std::size_t j = 0; j < jobs; ++j) {
        b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
                  static_cast<Time>(rng.uniform_u64(30)),
                  1 + static_cast<Time>(rng.uniform_u64(40)));
      }
      const Instance inst = std::move(b).build();
      std::vector<std::uint32_t> speeds(machines);
      for (auto& s : speeds) {
        s = 1 + static_cast<std::uint32_t>(rng.uniform_u64(spread));
      }
      const Time horizon = 25 + static_cast<Time>(rng.uniform_u64(50));

      RelatedEngine fast(inst, speeds, SpeedPick::kFastestFree);
      fast.run(related::fcfs_selector(), horizon);
      RelatedEngine slow(inst, speeds, SpeedPick::kSlowestFree);
      slow.run(related::fcfs_selector(), horizon);
      const double hi =
          std::max(fast.utilization(), slow.utilization());
      const double lo =
          std::min(fast.utilization(), slow.utilization());
      if (hi > 0.0) {
        const double r = lo / hi;
        worst = std::min(worst, r);
        total += r;
      } else {
        total += 1.0;
      }
    }
    table.add_row({std::to_string(spread),
                   AsciiTable::format_double(worst, 4),
                   AsciiTable::format_double(
                       total / static_cast<double>(samples), 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape: spread 1 (identical machines) stays >= 0.75; the\n"
      "worst ratio decays as the speed spread grows.\n");
  return 0;
}
