// The Table 1 -> Table 2 transition as a series: unfairness delta_psi/p_tot
// versus the experiment horizon, on the LPC-EGEE workload. The paper runs
// two horizons (5*10^4 and 5*10^5) and observes that every polynomial
// algorithm drifts away from the fair reference on longer traces; this
// bench plots the whole trajectory. Thin shell over the src/exp harness —
// equivalent to `fairsched_exp horizon-growth`; the horizon is a
// declarative sweep axis, not a loop here.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  const ScenarioOptions options = scenario_options_from_flags(flags);
  return run_sweep_scenario(make_horizon_growth_sweep(options), options);
}
