// The Table 1 -> Table 2 transition as a series: unfairness delta_psi/p_tot
// versus the experiment horizon, on the LPC-EGEE workload. The paper runs
// two horizons (5*10^4 and 5*10^5) and observes that every polynomial
// algorithm drifts away from the fair reference on longer traces; this
// bench plots the whole trajectory.

#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::bench;

  const Flags flags(argc, argv);
  CommonFlags common = parse_common_flags(flags, /*duration=*/0,
                                          /*instances=*/5);

  const std::vector<AlgorithmSpec> algorithms = {
      parse_algorithm("roundrobin"),
      parse_algorithm("rand15"),
      parse_algorithm("directcontr"),
      parse_algorithm("fairshare"),
  };
  const SyntheticSpec spec = preset_lpc_egee();

  std::printf(
      "Unfairness vs horizon (%s, %zu instance(s) per point, %u orgs)\n",
      spec.name.c_str(), common.config.instances, common.config.orgs);

  std::vector<std::string> header{"horizon"};
  for (const auto& a : algorithms) header.push_back(a.display_name());
  AsciiTable table(header);

  for (Time horizon : {12500, 25000, 50000, 100000, 200000, 400000}) {
    common.config.duration = horizon;
    const auto stats =
        run_fairness_experiment(spec, algorithms, common.config);
    std::vector<std::string> row{std::to_string(horizon)};
    for (const auto& acc : stats) {
      row.push_back(AsciiTable::format_double(acc.mean(), 1));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper Tables 1 vs 2): every series grows with the "
      "horizon; RoundRobin fastest, Rand slowest.\n");
  return 0;
}
