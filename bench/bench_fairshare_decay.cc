// Ablation: how the fair-share family's memory model affects Shapley
// fairness. FAIRSHARE remembers forever; CURRFAIRSHARE remembers nothing;
// DECAYFAIRSHARE interpolates via the half-life — real schedulers (SLURM,
// Maui) ship a configurable half-life, so this sweep answers which setting
// best approximates the Shapley-fair reference on bursty consortia.

#include <cstdio>

#include "bench/common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::bench;

  const Flags flags(argc, argv);
  const CommonFlags common = parse_common_flags(flags, /*duration=*/50000,
                                                /*instances=*/10);

  std::vector<AlgorithmSpec> algorithms = {
      parse_algorithm("currfairshare"),
      parse_algorithm("decayfairshare500"),
      parse_algorithm("decayfairshare2500"),
      parse_algorithm("decayfairshare10000"),
      parse_algorithm("decayfairshare50000"),
      parse_algorithm("fairshare"),
      parse_algorithm("directcontr"),  // Shapley-aware yardstick
      parse_algorithm("random"),       // no-policy yardstick
  };

  const SyntheticSpec spec = preset_lpc_egee();
  std::printf(
      "Fair-share memory ablation on %s: delta_psi / p_tot, duration %lld, "
      "%zu instance(s), %u orgs\n",
      spec.name.c_str(), static_cast<long long>(common.config.duration),
      common.config.instances, common.config.orgs);

  const std::vector<StatsAccumulator> stats =
      run_fairness_experiment(spec, algorithms, common.config);

  AsciiTable table({"algorithm", "avg", "st.dev", "min", "max"});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    table.add_row({algorithms[a].display_name(),
                   AsciiTable::format_double(stats[a].mean(), 2),
                   AsciiTable::format_double(stats[a].stdev(), 2),
                   AsciiTable::format_double(stats[a].min(), 2),
                   AsciiTable::format_double(stats[a].max(), 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nReading: the memoryless and infinite-memory extremes bracket the\n"
      "decayed variants; none matches the contribution-aware DirectContr,\n"
      "reinforcing the paper's conclusion that static/usage-based shares\n"
      "cannot substitute for measuring organizations' actual impact.\n");
  return 0;
}
