// Ablation: how the fair-share family's memory model affects Shapley
// fairness. FAIRSHARE remembers forever; CURRFAIRSHARE remembers nothing;
// DECAYFAIRSHARE interpolates via the half-life — real schedulers (SLURM,
// Maui) ship a configurable half-life, so this sweep answers which setting
// best approximates the Shapley-fair reference on bursty consortia. Thin
// shell over the src/exp harness — equivalent to `fairsched_exp
// fairshare-decay`; the half-life is a declarative sweep axis, not an
// enumerated policy list here.

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  const ScenarioOptions options = scenario_options_from_flags(flags);
  return run_sweep_scenario(make_fairshare_decay_sweep(options), options);
}
