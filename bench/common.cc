#include "bench/common.h"

#include <cstdio>
#include <stdexcept>

#include "exp/policy_registry.h"
#include "exp/sweep.h"
#include "util/table.h"

namespace fairsched::bench {

std::vector<AlgorithmSpec> table_algorithms() {
  return {
      parse_algorithm("roundrobin"),  parse_algorithm("rand15"),
      parse_algorithm("directcontr"), parse_algorithm("fairshare"),
      parse_algorithm("utfairshare"), parse_algorithm("currfairshare"),
  };
}

std::vector<StatsAccumulator> run_fairness_experiment(
    const SyntheticSpec& spec, const std::vector<AlgorithmSpec>& algorithms,
    const ExperimentConfig& config) {
  // One-workload sweep through the shared driver: sharding, seeding and
  // deterministic aggregation all live in src/exp now.
  exp::SweepSpec sweep;
  sweep.name = spec.name;
  for (const AlgorithmSpec& algorithm : algorithms) {
    sweep.policies.push_back(exp::canonical_policy_name(algorithm));
  }
  exp::SweepWorkload workload;
  workload.name = spec.name;
  workload.kind = exp::SweepWorkload::Kind::kSynthetic;
  workload.spec = spec;
  workload.orgs = config.orgs;
  workload.split = config.split;
  workload.zipf_s = config.zipf_s;
  sweep.workloads.push_back(std::move(workload));
  sweep.instances = config.instances;
  sweep.seed = config.seed;
  sweep.horizon = config.duration;
  sweep.baseline = "ref";
  sweep.threads = config.threads;

  const exp::SweepResult result = exp::SweepDriver().run(sweep);
  std::vector<StatsAccumulator> stats;
  stats.reserve(algorithms.size());
  for (const exp::SweepCell& cell : result.cells[0]) {
    stats.push_back(cell.unfairness);
  }
  return stats;
}

CommonFlags parse_common_flags(const Flags& flags, Time default_duration,
                               std::size_t default_instances) {
  CommonFlags out;
  out.config.orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 5));
  out.config.duration = flags.get_int("duration", default_duration);
  out.config.instances = static_cast<std::size_t>(
      flags.get_int("instances", static_cast<std::int64_t>(default_instances)));
  out.config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2013));
  out.config.threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  out.config.zipf_s = flags.get_double("zipf-s", 1.0);
  const std::string split = flags.get_string("split", "zipf");
  if (split == "zipf") {
    out.config.split = MachineSplit::kZipf;
  } else if (split == "uniform") {
    out.config.split = MachineSplit::kUniform;
  } else {
    throw std::invalid_argument("--split must be zipf or uniform");
  }
  out.scale = flags.get_double("scale", 16.0);
  return out;
}

void print_fairness_table(
    const std::string& title, const std::vector<SyntheticSpec>& specs,
    const std::vector<AlgorithmSpec>& algorithms,
    const std::vector<std::vector<StatsAccumulator>>& results) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header{"Algorithm"};
  for (const SyntheticSpec& spec : specs) {
    header.push_back(spec.name + " Avg");
    header.push_back(spec.name + " St.dev");
  }
  AsciiTable table(header);
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    std::vector<std::string> row{algorithms[a].display_name()};
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const StatsAccumulator& acc = results[s][a];
      row.push_back(AsciiTable::format_double(acc.mean(), 2));
      row.push_back(AsciiTable::format_double(acc.stdev(), 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
}

}  // namespace fairsched::bench
