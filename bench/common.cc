#include "bench/common.h"

#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "metrics/fairness.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace fairsched::bench {

std::vector<AlgorithmSpec> table_algorithms() {
  return {
      parse_algorithm("roundrobin"),  parse_algorithm("rand15"),
      parse_algorithm("directcontr"), parse_algorithm("fairshare"),
      parse_algorithm("utfairshare"), parse_algorithm("currfairshare"),
  };
}

std::vector<StatsAccumulator> run_fairness_experiment(
    const SyntheticSpec& spec, const std::vector<AlgorithmSpec>& algorithms,
    const ExperimentConfig& config) {
  std::vector<StatsAccumulator> stats(algorithms.size());
  std::mutex mu;
  ThreadPool pool(config.threads);
  pool.parallel_for(config.instances, [&](std::size_t i) {
    const std::uint64_t seed = mix_seed(config.seed, i);
    const Instance inst = make_synthetic_instance(
        spec, config.orgs, config.duration, config.split, config.zipf_s,
        seed);
    const RunResult ref = run_algorithm(inst, parse_algorithm("ref"),
                                        config.duration, seed);
    std::vector<double> ratios(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const RunResult r =
          run_algorithm(inst, algorithms[a], config.duration, seed);
      ratios[a] =
          unfairness_ratio(r.utilities2, ref.utilities2, ref.work_done);
    }
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      stats[a].add(ratios[a]);
    }
  });
  return stats;
}

CommonFlags parse_common_flags(const Flags& flags, Time default_duration,
                               std::size_t default_instances) {
  CommonFlags out;
  out.config.orgs =
      static_cast<std::uint32_t>(flags.get_int("orgs", 5));
  out.config.duration = flags.get_int("duration", default_duration);
  out.config.instances = static_cast<std::size_t>(
      flags.get_int("instances", static_cast<std::int64_t>(default_instances)));
  out.config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2013));
  out.config.threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  out.config.zipf_s = flags.get_double("zipf-s", 1.0);
  const std::string split = flags.get_string("split", "zipf");
  if (split == "zipf") {
    out.config.split = MachineSplit::kZipf;
  } else if (split == "uniform") {
    out.config.split = MachineSplit::kUniform;
  } else {
    throw std::invalid_argument("--split must be zipf or uniform");
  }
  out.scale = flags.get_double("scale", 16.0);
  return out;
}

void print_fairness_table(
    const std::string& title, const std::vector<SyntheticSpec>& specs,
    const std::vector<AlgorithmSpec>& algorithms,
    const std::vector<std::vector<StatsAccumulator>>& results) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header{"Algorithm"};
  for (const SyntheticSpec& spec : specs) {
    header.push_back(spec.name + " Avg");
    header.push_back(spec.name + " St.dev");
  }
  AsciiTable table(header);
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    std::vector<std::string> row{algorithms[a].display_name()};
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const StatsAccumulator& acc = results[s][a];
      row.push_back(AsciiTable::format_double(acc.mean(), 2));
      row.push_back(AsciiTable::format_double(acc.stdev(), 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
}

}  // namespace fairsched::bench
