// Reproduces Figure 7 and probes Theorem 6.2: every greedy algorithm is
// 3/4-competitive for resource utilization, and the bound is tight.
//
// Part 1 prints the Figure 7 example (exactly 100% vs 75%).
// Part 2 sweeps the adversarial family that generalizes Figure 7 (m
// machines; m short jobs of size p for O1; m/2 long jobs of size 2p for
// O2): the short-jobs-first greedy converges to exactly 3/4 of optimum.
// Part 3 samples random instances and reports the worst pairwise
// utilization ratio over a set of greedy policies — it must stay >= 0.75.

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "metrics/utility.h"
#include "sched/runner.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace fairsched {
namespace {

class PriorityPolicy final : public Policy {
 public:
  explicit PriorityPolicy(OrgId preferred) : preferred_(preferred) {}
  OrgId select(const PolicyView& view) override {
    if (view.waiting(preferred_) > 0) return preferred_;
    for (OrgId u = 0; u < view.num_orgs(); ++u) {
      if (view.waiting(u) > 0) return u;
    }
    throw std::logic_error("no waiting job");
  }

 private:
  OrgId preferred_;
};

// m short jobs (size p) for O1, m/2 long jobs (size 2p) for O2, m machines,
// all released at 0; horizon 2p. Short-first wastes m/2 machines over the
// second half: utilization (m*p + (m/2)*p) / (m*2p) = 3/4.
Instance adversarial(std::uint32_t m, Time p) {
  InstanceBuilder b;
  const OrgId o1 = b.add_org("short", m / 2);
  const OrgId o2 = b.add_org("long", m - m / 2);
  for (std::uint32_t i = 0; i < m; ++i) b.add_job(o1, 0, p);
  for (std::uint32_t i = 0; i < m / 2; ++i) b.add_job(o2, 0, 2 * p);
  return std::move(b).build();
}

double run_priority(const Instance& inst, OrgId pref, Time horizon) {
  Engine e(inst);
  PriorityPolicy policy(pref);
  e.run(policy, horizon);
  return resource_utilization(inst, e.schedule(), horizon);
}

}  // namespace
}  // namespace fairsched

int main(int argc, char** argv) {
  using namespace fairsched;
  const Flags flags(argc, argv);
  const std::size_t samples =
      static_cast<std::size_t>(flags.get_int("samples", 200));

  // --- Part 1: Figure 7 ----------------------------------------------------
  std::printf("Figure 7: greedy resource utilization example (T = 6)\n");
  {
    const Instance inst = adversarial(4, 3);
    const double good = run_priority(inst, 1, 6);
    const double bad = run_priority(inst, 0, 6);
    std::printf("  long-jobs-first greedy : %.0f%% utilization\n",
                good * 100.0);
    std::printf("  short-jobs-first greedy: %.0f%% utilization\n",
                bad * 100.0);
    std::printf("  ratio: %.4f (paper: 0.75 exactly)\n\n", bad / good);
  }

  // --- Part 2: adversarial sweep -------------------------------------------
  std::printf("Adversarial family (Thm 6.2 tightness): ratio vs m\n");
  AsciiTable table({"machines", "p", "short-first", "long-first", "ratio"});
  for (std::uint32_t m : {4u, 8u, 16u, 64u, 256u}) {
    for (Time p : {3, 10, 100}) {
      const Instance inst = adversarial(m, p);
      const double good = run_priority(inst, 1, 2 * p);
      const double bad = run_priority(inst, 0, 2 * p);
      table.add_row({std::to_string(m), std::to_string(p),
                     AsciiTable::format_double(bad, 4),
                     AsciiTable::format_double(good, 4),
                     AsciiTable::format_double(bad / good, 4)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  // --- Part 3: random instances ---------------------------------------------
  std::printf(
      "\nRandom instances: worst pairwise greedy utilization ratio "
      "(%zu samples; Thm 6.2 guarantees >= 0.75)\n",
      samples);
  double worst = 1.0;
  std::size_t below = 0;
  Rng rng(flags.get_int("seed", 7));
  for (std::size_t s = 0; s < samples; ++s) {
    InstanceBuilder b;
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform_u64(3));
    for (std::uint32_t u = 0; u < k; ++u) {
      b.add_org("o", 1 + static_cast<std::uint32_t>(rng.uniform_u64(3)));
    }
    const std::size_t jobs = 10 + rng.uniform_u64(40);
    for (std::size_t j = 0; j < jobs; ++j) {
      b.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
                static_cast<Time>(rng.uniform_u64(40)),
                1 + static_cast<Time>(rng.uniform_u64(20)));
    }
    const Instance inst = std::move(b).build();
    const Time horizon = 20 + static_cast<Time>(rng.uniform_u64(60));
    std::vector<double> utils;
    for (OrgId pref = 0; pref < inst.num_orgs(); ++pref) {
      utils.push_back(run_priority(inst, pref, horizon));
    }
    for (const char* alg : {"fcfs", "roundrobin", "fairshare"}) {
      const RunResult r = run_algorithm(inst, parse_algorithm(alg), horizon,
                                        s);
      utils.push_back(resource_utilization(inst, r.schedule, horizon));
    }
    const double lo = *std::min_element(utils.begin(), utils.end());
    const double hi = *std::max_element(utils.begin(), utils.end());
    if (hi > 0.0) {
      const double ratio = lo / hi;
      worst = std::min(worst, ratio);
      if (ratio < 0.75) ++below;
    }
  }
  std::printf("  worst observed ratio: %.4f  (violations of 0.75: %zu)\n",
              worst, below);
  return below == 0 ? 0 : 1;
}
