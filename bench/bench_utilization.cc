// Reproduces Figure 7 and probes Theorem 6.2: every greedy algorithm is
// 3/4-competitive for resource utilization, and the bound is tight. Thin
// shell over the src/exp harness — equivalent to `fairsched_exp
// utilization`.
//
// Part 1 prints the Figure 7 example (exactly 100% vs 75%); Part 2 sweeps
// the adversarial family that generalizes it; Part 3 samples random
// consortia through the sweep driver and checks the worst pairwise greedy
// utilization ratio stays >= 0.75 (--instances controls the sample count).

#include "exp/scenarios.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace fairsched;
  using namespace fairsched::exp;

  const Flags flags(argc, argv);
  ScenarioOptions options = scenario_options_from_flags(flags);
  // Back-compat with the pre-harness bench flag.
  if (flags.has("samples") && options.instances == 0) {
    options.instances =
        static_cast<std::size_t>(flags.get_int("samples", 200));
  }
  return run_utilization_scenario(options);
}
