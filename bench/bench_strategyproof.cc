// Ablation for Section 4 (Theorem 4.1): why the scheduler must optimize the
// strategy-proof utility psi_sp rather than flow time.
//
// An organization manipulates its workload (splits every job into unit
// pieces, merges bursts into one large job, or delays releases) and we
// measure how each metric changes *for the same greedy scheduling rule*.
// psi_sp is invariant under split/merge and never rewards delaying;
// flow time moves substantially under the same manipulations — an
// organization graded by flow time has an incentive to game the system.

#include <cstdio>
#include <vector>

#include "metrics/utility.h"
#include "exp/policy_registry.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace fairsched {
namespace {
// Shorthand for the open policy registry (see exp/policy_registry.h).
exp::PolicyRegistry& registry() { return exp::PolicyRegistry::global(); }

struct JobSpec {
  Time release;
  Time processing;
};

// Baseline workload of the manipulating organization.
std::vector<JobSpec> honest_jobs(Rng& rng, std::size_t count) {
  std::vector<JobSpec> out;
  Time t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += static_cast<Time>(rng.uniform_u64(12));
    out.push_back({t, 2 + static_cast<Time>(rng.uniform_u64(8))});
  }
  return out;
}

std::vector<JobSpec> split_all(const std::vector<JobSpec>& jobs) {
  std::vector<JobSpec> out;
  for (const JobSpec& j : jobs) {
    for (Time piece = 0; piece < j.processing; ++piece) {
      out.push_back({j.release, 1});
    }
  }
  return out;
}

std::vector<JobSpec> merge_pairs(const std::vector<JobSpec>& jobs) {
  std::vector<JobSpec> out;
  for (std::size_t i = 0; i + 1 < jobs.size(); i += 2) {
    out.push_back({std::max(jobs[i].release, jobs[i + 1].release),
                   jobs[i].processing + jobs[i + 1].processing});
  }
  if (jobs.size() % 2 == 1) out.push_back(jobs.back());
  return out;
}

std::vector<JobSpec> delay_all(const std::vector<JobSpec>& jobs, Time by) {
  std::vector<JobSpec> out;
  for (const JobSpec& j : jobs) out.push_back({j.release + by, j.processing});
  return out;
}

struct Outcome {
  double psi_sp;
  double flow;  // mean flow time of completed jobs
};

// Schedules org 0 with the manipulated jobs against a fixed background org
// (FCFS rule for neutrality) and reports org 0's metrics at the horizon.
Outcome evaluate(const std::vector<JobSpec>& org0_jobs, Time horizon,
                 std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder b;
  const OrgId manip = b.add_org("manipulator", 1);
  const OrgId other = b.add_org("background", 1);
  for (const JobSpec& j : org0_jobs) b.add_job(manip, j.release, j.processing);
  Time t = 0;
  for (int i = 0; i < 60; ++i) {
    t += static_cast<Time>(rng.uniform_u64(10));
    b.add_job(other, t, 1 + static_cast<Time>(rng.uniform_u64(6)));
  }
  const Instance inst = std::move(b).build();
  const RunResult r = registry().run(inst, "fcfs", horizon, 1);
  Outcome out;
  out.psi_sp =
      static_cast<double>(sp_org_half_utility(inst, r.schedule, manip,
                                              horizon)) /
      2.0;
  // Flow time of org 0's completed jobs.
  std::int64_t flow = 0;
  std::size_t completed = 0;
  for (const Placement& p : r.schedule.placements()) {
    if (p.org != manip) continue;
    const Job& job = inst.job(p.org, p.index);
    if (p.start + job.processing <= horizon) {
      flow += p.start + job.processing - job.release;
      ++completed;
    }
  }
  out.flow = completed == 0 ? 0.0
                            : static_cast<double>(flow) /
                                  static_cast<double>(completed);
  return out;
}

}  // namespace
}  // namespace fairsched

int main(int argc, char** argv) {
  using namespace fairsched;
  const Flags flags(argc, argv);
  const Time horizon = flags.get_int("duration", 600);
  const std::size_t trials =
      static_cast<std::size_t>(flags.get_int("trials", 20));

  std::printf(
      "Strategy-proofness ablation (Thm 4.1): metric change when one "
      "organization manipulates its workload (%zu trials)\n\n",
      trials);

  double dpsi_split = 0, dflow_split = 0;
  double dpsi_merge = 0, dflow_merge = 0;
  double dpsi_delay = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(900 + trial);
    const auto honest = honest_jobs(rng, 25);
    const Outcome base = evaluate(honest, horizon, trial);
    const Outcome split = evaluate(split_all(honest), horizon, trial);
    const Outcome merged = evaluate(merge_pairs(honest), horizon, trial);
    const Outcome delayed = evaluate(delay_all(honest, 20), horizon, trial);
    auto pct = [](double now, double before) {
      return before == 0.0 ? 0.0 : (now - before) / before * 100.0;
    };
    dpsi_split += pct(split.psi_sp, base.psi_sp);
    dflow_split += pct(split.flow, base.flow);
    dpsi_merge += pct(merged.psi_sp, base.psi_sp);
    dflow_merge += pct(merged.flow, base.flow);
    dpsi_delay += pct(delayed.psi_sp, base.psi_sp);
  }
  const double n = static_cast<double>(trials);
  AsciiTable table({"manipulation", "psi_sp change %", "mean flow change %"});
  table.add_row({"split into unit jobs",
                 AsciiTable::format_double(dpsi_split / n, 2),
                 AsciiTable::format_double(dflow_split / n, 2)});
  table.add_row({"merge job pairs",
                 AsciiTable::format_double(dpsi_merge / n, 2),
                 AsciiTable::format_double(dflow_merge / n, 2)});
  table.add_row({"delay releases by 20",
                 AsciiTable::format_double(dpsi_delay / n, 2), "n/a"});
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape: psi_sp barely moves under split/merge (only via\n"
      "changed scheduling opportunities) and never improves under delay,\n"
      "while mean flow time swings strongly — a flow-time-graded system\n"
      "invites workload manipulation, which motivates psi_sp (Thm 4.1).\n");
  return 0;
}
