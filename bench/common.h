#pragma once

// Shared helpers for the paper-reproduction benchmarks (Section 7
// pipeline). The actual driver loop lives in src/exp (SweepDriver):
// run_fairness_experiment is a thin one-workload wrapper kept for the
// benches that sweep an extra dimension themselves (fig10, horizon growth,
// decay half-life).

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "sched/runner.h"
#include "util/cli.h"
#include "util/stats.h"
#include "workload/assignment.h"
#include "workload/synthetic.h"

namespace fairsched::bench {

struct ExperimentConfig {
  std::uint32_t orgs = 5;
  Time duration = 50000;
  std::size_t instances = 20;
  std::uint64_t seed = 2013;
  MachineSplit split = MachineSplit::kZipf;
  double zipf_s = 1.0;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

// Default algorithm list of Tables 1-2.
std::vector<AlgorithmSpec> table_algorithms();

struct CellStats {
  StatsAccumulator acc;
};

// Runs the fairness experiment for one workload spec: `instances`
// independent windows; per window REF is computed once and every algorithm
// is scored by unfairness_ratio against it. Returns one accumulator per
// algorithm (same order as `algorithms`).
std::vector<StatsAccumulator> run_fairness_experiment(
    const SyntheticSpec& spec, const std::vector<AlgorithmSpec>& algorithms,
    const ExperimentConfig& config);

// Parses the harness-wide flags (--instances, --duration, --orgs, --seed,
// --scale, --threads, --split) with the given defaults.
struct CommonFlags {
  ExperimentConfig config;
  double scale = 16.0;  // machine down-scaling of the big archives
};
CommonFlags parse_common_flags(const Flags& flags, Time default_duration,
                               std::size_t default_instances);

// Renders the Tables 1-2 layout: one row per algorithm, per workload the
// (Avg, St.dev) pair.
void print_fairness_table(
    const std::string& title, const std::vector<SyntheticSpec>& specs,
    const std::vector<AlgorithmSpec>& algorithms,
    const std::vector<std::vector<StatsAccumulator>>& results);

}  // namespace fairsched::bench
