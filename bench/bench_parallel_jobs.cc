// Probes the paper's second future-work direction: with rigid parallel
// jobs, the efficiency loss of greedy scheduling "can be higher" than the
// 25% bound of Theorem 6.2. This bench quantifies the fragmentation/drain
// gap between the two natural disciplines:
//
//   * strict global FIFO (wide head blocks; machines drain under it),
//   * greedy backfill (any fitting front job starts; per-org FIFO kept),
//
// on (1) a crafted drain instance family parameterized by the platform
// width, and (2) random rigid workloads parameterized by the maximum job
// width. Spoiler: the strict/backfill utilization ratio drops well below
// 3/4 and keeps degrading as jobs get wider — for sequential jobs (max
// width 1) the two disciplines coincide.

#include <algorithm>
#include <cstdio>

#include "parallel/parallel.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

using namespace fairsched;
using par::ParallelEngine;
using par::ParallelInstance;
using par::QueueDiscipline;

namespace {

// m machines: m narrow jobs with staggered completions 2, 4, ..., 2m; a
// full-width job arrives at t=1 and, under strict FIFO, forces every
// machine that finishes to idle until the last narrow job drains (idle
// area ~ m^2). Plenty of narrow fillers follow, which only backfill can
// use. The strict/backfill utilization ratio tends to 1/2 as m grows.
double drain_ratio(std::uint32_t m) {
  ParallelInstance inst;
  const OrgId narrow = inst.add_org(m);
  const OrgId wide = inst.add_org(0);
  for (std::uint32_t i = 1; i <= m; ++i) {
    inst.add_job(narrow, 0, 2 * static_cast<Time>(i), 1);
  }
  inst.add_job(wide, 1, 5, m);
  // Ample fillers (m per time step) so backfill can keep every freed
  // machine busy while strict FIFO drains behind the wide head.
  for (Time step = 2; step < 14; ++step) {
    for (std::uint32_t j = 0; j < m; ++j) {
      inst.add_job(narrow, step, 6, 1);
    }
  }
  inst.finalize();
  const Time horizon = 2 * static_cast<Time>(m) + 12;
  ParallelEngine strict(inst, QueueDiscipline::kStrictFifo);
  strict.run(horizon);
  ParallelEngine backfill(inst, QueueDiscipline::kBackfill);
  backfill.run(horizon);
  return strict.utilization() / backfill.utilization();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::size_t samples =
      static_cast<std::size_t>(flags.get_int("samples", 100));

  std::printf(
      "Rigid parallel jobs: greedy efficiency loss beyond the sequential\n"
      "25%% bound (paper future work).\n\n");

  AsciiTable drain({"machines", "strict/backfill utilization ratio"});
  for (std::uint32_t m : {2u, 4u, 8u, 16u, 32u}) {
    drain.add_row({std::to_string(m),
                   AsciiTable::format_double(drain_ratio(m), 4)});
  }
  std::fputs(drain.to_string().c_str(), stdout);
  std::printf("  -> falls below 0.75 and tends to 1/2: drain waste grows with m.\n\n");

  std::printf(
      "Random rigid workloads: mean and worst strict/backfill ratio vs the "
      "maximum job width (%zu samples each)\n",
      samples);
  AsciiTable table({"max width", "worst ratio", "mean ratio"});
  Rng rng(flags.get_int("seed", 3));
  for (std::uint32_t max_width : {1u, 2u, 4u, 8u}) {
    double worst = 1.0, total = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
      ParallelInstance inst;
      const std::uint32_t machines = 8;
      const std::uint32_t k =
          2 + static_cast<std::uint32_t>(rng.uniform_u64(2));
      for (std::uint32_t u = 0; u < k; ++u) {
        inst.add_org(u == 0 ? machines : 0);
      }
      const std::size_t jobs = 15 + rng.uniform_u64(25);
      for (std::size_t j = 0; j < jobs; ++j) {
        inst.add_job(static_cast<OrgId>(rng.uniform_u64(k)),
                     static_cast<Time>(rng.uniform_u64(40)),
                     1 + static_cast<Time>(rng.uniform_u64(20)),
                     1 + static_cast<std::uint32_t>(
                             rng.uniform_u64(max_width)));
      }
      inst.finalize();
      const Time horizon = 30 + static_cast<Time>(rng.uniform_u64(50));
      ParallelEngine strict(inst, QueueDiscipline::kStrictFifo);
      strict.run(horizon);
      ParallelEngine backfill(inst, QueueDiscipline::kBackfill);
      backfill.run(horizon);
      const double hi =
          std::max(strict.utilization(), backfill.utilization());
      const double lo =
          std::min(strict.utilization(), backfill.utilization());
      const double r = hi > 0.0 ? lo / hi : 1.0;
      worst = std::min(worst, r);
      total += r;
    }
    table.add_row({std::to_string(max_width),
                   AsciiTable::format_double(worst, 4),
                   AsciiTable::format_double(
                       total / static_cast<double>(samples), 4)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\nExpected shape: max width 1 (sequential) gives ratio 1.0 — the\n"
      "disciplines coincide; wider jobs push the worst ratio below the\n"
      "sequential 0.75 guarantee, confirming the paper's conjecture.\n");
  return 0;
}
